"""Quality/latency Pareto frontier: staged matchmaker vs every backend.

A labeled-relevance workload scores all seven discovery backends — the
semantic directory, flat baseline (indexed and linear), syntactic WSDL
registry, annotated taxonomy, on-line matchmaker, GiST directory, and the
multi-phase :class:`~repro.core.matchmaker.StagedMatchmaker` at three
cutoff points — on the same catalog and query set.  Ground truth comes
from the scalar ``Matcher`` oracle (:mod:`repro.core.quality`): a service
is relevant when any provided capability matches any requested one, so
precision/recall are service-level and comparable across backends that
return different amounts of capability detail.

Reported per backend: p50 per-query latency, macro precision, macro
recall — the axes of the Pareto plot in ``docs/MATCHMAKING.md``.

Gates (hard asserts, also exported for ``obs regress``):

* staged at loose cutoffs returns the exhaustive (flat-linear) ranking
  **bit for bit** on every query;
* strict dominance over the on-line matchmaker: equal-or-better recall
  at ≥ 2× lower p50 (measured on the same query subset — the on-line
  backend re-reasons per query, so it answers a subsample, as in
  ``examples/matchmaker_shootout.py``);
* every staged sweep point keeps perfect precision (stages 2/3 are
  exact, so cutoffs may drop relevant services but never admit
  irrelevant ones).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the catalog and the
on-line subsample; the sweep itself is identical.
"""

from __future__ import annotations

import os
import statistics
import time

from benchmarks._report import save_report, series_table
from repro.core.codes import CodeTable
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.matchmaker import StageCutoffs, StagedMatchmaker
from repro.core.packed import default_backend
from repro.core.quality import mean_scores, relevant_services, score_answer
from repro.ontology.generator import OntologyShape
from repro.ontology.registry import OntologyRegistry
from repro.registry import (
    AnnotatedTaxonomyRegistry,
    GistDirectory,
    OnlineSemanticRegistry,
    SyntacticRegistry,
)
from repro.services.generator import ServiceWorkload, WorkloadShape

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

SEED = 7
POPULATION = 100 if SMOKE else 400
MATCHING_QUERIES = 16
UNRELATED_QUERIES = 4
#: Queries the on-line matchmaker answers (per-query re-reasoning makes
#: the full set minutes of wall-clock; the gate compares on this subset).
ONLINE_SUBSET = 3 if SMOKE else 6
SPEEDUP_FLOOR = 2.0

#: The cutoff sweep: loose reproduces the exhaustive ranking; the tighter
#: points trade recall for latency (docs/MATCHMAKING.md §cutoffs).
SWEEP = [
    ("staged-loose", StageCutoffs()),
    ("staged-top10", StageCutoffs(top_k=10)),
    ("staged-strict", StageCutoffs(top_k=5, min_overlap=1, stage2_keep=20)),
]


def _measure(backend, requests, repeats: int):
    """Per-query answers and mean latency (seconds) per query."""
    answers, latencies = [], []
    for request in requests:
        rows = backend.query(request)  # warm-up: lazy index/engine builds
        start = time.perf_counter()
        for _ in range(repeats):
            rows = backend.query(request)
        latencies.append((time.perf_counter() - start) / repeats)
        answers.append(rows)
    return answers, latencies


def test_matchmaker_pareto_report():
    shape = WorkloadShape(
        ontology_count=6,
        ontology_shape=OntologyShape(concepts=25, properties=6),
        capabilities_per_service=2,
        inputs_per_capability=2,
        outputs_per_capability=2,
        properties_per_capability=1,
    )
    workload = ServiceWorkload(shape=shape, seed=SEED)
    table = CodeTable(OntologyRegistry(workload.ontologies))
    profiles = workload.make_services(POPULATION)
    requests = [
        workload.matching_request(profiles[i]) for i in range(MATCHING_QUERIES)
    ] + [workload.unrelated_request(index=i) for i in range(UNRELATED_QUERIES)]
    labels = [
        relevant_services(profiles, request, table=table) for request in requests
    ]

    backends = {
        "semantic": SemanticDirectory(table),
        "flat": FlatDirectory(table),
        "flat-linear": FlatDirectory(table, use_interval_index=False),
        "syntactic": SyntacticRegistry(),
        "annotated": AnnotatedTaxonomyRegistry(workload.taxonomy),
        "gist": GistDirectory(table),
        "online": OnlineSemanticRegistry(workload.ontologies),
    }
    for name, cutoffs in SWEEP:
        backends[name] = StagedMatchmaker(table, cutoffs=cutoffs)
    for backend in backends.values():
        backend.publish_batch(profiles)

    metrics: dict[str, object] = {}
    rows_out = []
    p50: dict[str, float] = {}
    answers: dict[str, list] = {}
    online_requests = requests[:ONLINE_SUBSET]
    for name, backend in backends.items():
        if name == "online":
            backend_requests, repeats = online_requests, 1
        else:
            backend_requests, repeats = requests, 3
        backend_answers, latencies = _measure(backend, backend_requests, repeats)
        answers[name] = backend_answers
        scores = [
            score_answer(rows, labels[i]) for i, rows in enumerate(backend_answers)
        ]
        precision, recall = mean_scores(scores)
        p50[name] = statistics.median(latencies)
        metrics[f"p50_ms_{name}"] = p50[name] * 1e3
        metrics[f"precision_{name}"] = precision
        metrics[f"recall_{name}"] = recall
        rows_out.append(
            [
                name,
                f"{p50[name] * 1e3:.3f}",
                f"{precision:.3f}",
                f"{recall:.3f}",
                len(backend_requests),
            ]
        )

    # --- gate 1: loose cutoffs == exhaustive ranking, bit for bit -------
    for i, request in enumerate(requests):
        assert answers["staged-loose"][i] == answers["flat-linear"][i], (
            f"staged-loose diverged from the exhaustive ranking on query {i} "
            f"({request.uri})"
        )

    # --- gate 2: strict dominance over the on-line matchmaker ----------
    subset_scores = {
        name: mean_scores(
            [
                score_answer(rows, labels[i])
                for i, rows in enumerate(answers[name][:ONLINE_SUBSET])
            ]
        )
        for name in ("staged-loose", "online")
    }
    staged_subset_p50 = statistics.median(
        _measure(backends["staged-loose"], online_requests, 3)[1]
    )
    speedup = p50["online"] / max(staged_subset_p50, 1e-12)
    metrics["staged_speedup_vs_online"] = speedup
    metrics["recall_staged_loose_subset"] = subset_scores["staged-loose"][1]
    assert subset_scores["staged-loose"][1] >= subset_scores["online"][1], (
        "staged-loose recall fell below the on-line matchmaker: "
        f"{subset_scores['staged-loose'][1]:.3f} < {subset_scores['online'][1]:.3f}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"staged-loose p50 is only {speedup:.1f}x faster than the on-line "
        f"matchmaker (floor {SPEEDUP_FLOOR}x)"
    )

    # --- gate 3: cutoffs never cost precision --------------------------
    for name, _cutoffs in SWEEP:
        assert metrics[f"precision_{name}"] == 1.0, (
            f"{name} returned an irrelevant service (precision "
            f"{metrics[f'precision_{name}']:.3f}) — stages 2/3 must stay exact"
        )

    table_text = series_table(
        ["backend", "p50 ms", "precision", "recall", "queries"], rows_out
    )
    lines = [
        f"catalog: {POPULATION} services, {len(requests)} labeled queries "
        f"(engine={default_backend()})",
        table_text,
        f"staged-loose vs online: {speedup:.1f}x lower p50 at "
        f"equal-or-better recall (floor {SPEEDUP_FLOOR}x)",
    ]
    save_report(
        "matchmaker_pareto",
        "\n".join(lines),
        metrics=metrics,
        config={
            "population": POPULATION,
            "queries": len(requests),
            "online_subset": ONLINE_SUBSET,
            "seed": SEED,
            "smoke": SMOKE,
            "backend": default_backend(),
        },
        units={
            name: (
                "ms"
                if name.startswith("p50_ms_")
                else "ratio"
            )
            for name in metrics
        },
    )

"""Ablation — graph preselection policy (the §3.3 ontology index).

The directory preselects candidate graphs by their ontology-set keys.  Two
policies are implemented (see ``SemanticDirectory``):

* ``superset`` (default) — a graph qualifies only if its key covers every
  ontology of the request's outputs/properties (sound when ontologies
  define disjoint concept spaces; this is what keeps Fig. 9's optimized
  curve flat);
* ``intersection`` — the literal reading of the paper's filter (shared
  ontology suffices), safe even with cross-ontology bridging axioms but
  scanning more graphs.

The ablation measures: graphs visited, capability matches evaluated, query
latency and recall for both policies.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._report import save_report, series_table
from repro.core.directory import SemanticDirectory
from repro.core.matching import CodeMatcher
from repro.services.generator import ServiceWorkload

SIZES = [20, 60, 100]
QUERIES = 25


@pytest.fixture(scope="module")
def directories(directory_workload: ServiceWorkload, directory_table):
    built = {}
    for policy in ("superset", "intersection"):
        per_size = {}
        for size in SIZES:
            directory = SemanticDirectory(directory_table, preselection=policy)
            for index in range(size):
                directory.publish(directory_workload.make_service(index))
            per_size[size] = directory
        built[policy] = per_size
    return built


@pytest.mark.parametrize("policy", ["superset", "intersection"])
def test_query_policy(benchmark, directories, directory_workload, policy):
    directory = directories[policy][100]
    request = directory_workload.matching_request(directory_workload.make_service(3))
    hits = benchmark(directory.query, request)
    assert hits


def test_preselection_report(benchmark, directories, directory_workload, directory_table):
    rows = []
    for size in SIZES:
        stats = {}
        for policy in ("superset", "intersection"):
            directory = directories[policy][size]
            graphs_visited = 0
            matches = 0
            answered = 0
            start = time.perf_counter()
            for index in range(min(QUERIES, size)):
                request = directory_workload.matching_request(
                    directory_workload.make_service(index)
                )
                matcher = CodeMatcher(table=directory_table)
                for capability in request.capabilities:
                    candidates = directory._candidate_graphs(capability)
                    graphs_visited += len(candidates)
                    hits = []
                    for graph in candidates:
                        hits.extend(graph.query(capability, matcher, directory.query_mode))
                    if hits:
                        answered += 1
                matches += matcher.stats.capability_matches
            elapsed = (time.perf_counter() - start) / min(QUERIES, size)
            stats[policy] = (graphs_visited, matches, answered, elapsed)
        superset = stats["superset"]
        intersection = stats["intersection"]
        # Recall must be identical: superset filtering is sound for this
        # ontology suite (disjoint namespaces).
        assert superset[2] == intersection[2], (size, superset, intersection)
        assert superset[0] <= intersection[0]
        rows.append(
            [
                size,
                superset[0],
                intersection[0],
                superset[1],
                intersection[1],
                f"{superset[3] * 1e6:.0f}",
                f"{intersection[3] * 1e6:.0f}",
            ]
        )
    table = series_table(
        [
            "services",
            "graphs (superset)",
            "graphs (intersect)",
            "matches (superset)",
            "matches (intersect)",
            "query us (superset)",
            "query us (intersect)",
        ],
        rows,
    )
    table += "\nidentical recall on disjoint-namespace ontologies; superset visits far fewer graphs"
    metrics = {}
    for row in rows:
        metrics[f"graphs_superset_{row[0]}"] = (row[1], "graphs visited")
        metrics[f"graphs_intersection_{row[0]}"] = (row[2], "graphs visited")
        metrics[f"matches_superset_{row[0]}"] = (row[3], "capability matches")
        metrics[f"matches_intersection_{row[0]}"] = (row[4], "capability matches")
    save_report(
        "ablation_preselection",
        table,
        metrics=metrics,
        config={"sizes": [row[0] for row in rows], "workload_seed": 42},
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Query-engine microbenchmarks: distance cache, interval index, batching.

Workload: a directory caching 100 services answers a Zipf-distributed
request stream (rank weight ``1/rank^1.1``) over 30 distinct requests —
the skew a pervasive environment produces when a few popular capabilities
(printing, media rendering) dominate discovery traffic.  Reported series:

* **cold vs warm** — the same request stream against a fresh
  :class:`SemanticDirectory` and against one whose shared distance cache
  is already hot, with the cache hit rate;
* **flat linear vs flat indexed** — the Fig. 9 baseline scan against the
  same directory accelerated by the sorted interval index;
* **batch vs one-at-a-time** — ``query_batch`` against a Python-level
  query loop.

Results land in ``benchmarks/results/query_cache.txt``.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks._report import save_report, series_table
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.services.generator import ServiceWorkload

SERVICES = 100
DISTINCT_REQUESTS = 30
STREAM_LENGTH = 300
ZIPF_EXPONENT = 1.1
SEED = 2006


def zipf_stream(requests, length=STREAM_LENGTH, seed=SEED):
    """A Zipf-weighted sample of the distinct requests, rank 1 heaviest."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(requests))]
    return rng.choices(requests, weights=weights, k=length)


@pytest.fixture(scope="module")
def query_workload(directory_workload: ServiceWorkload, directory_table):
    profiles = [directory_workload.make_service(index) for index in range(SERVICES)]
    requests = [
        directory_workload.matching_request(profiles[index])
        for index in range(DISTINCT_REQUESTS)
    ]
    return profiles, zipf_stream(requests)


def _fresh_semantic(directory_table, profiles) -> SemanticDirectory:
    directory = SemanticDirectory(directory_table)
    directory.publish_batch(profiles)
    return directory


def _mean_us(fn, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1e6


def test_semantic_warm_stream(benchmark, directory_table, query_workload):
    """Steady-state: the Zipf stream against a hot distance cache."""
    profiles, stream = query_workload
    directory = _fresh_semantic(directory_table, profiles)
    directory.query_batch(stream)  # warm the cache
    result = benchmark(directory.query_batch, stream)
    assert len(result) == len(stream)
    assert directory.distance_cache.stats.hit_rate > 0.5


def test_flat_indexed_stream(benchmark, directory_table, query_workload):
    profiles, stream = query_workload
    directory = FlatDirectory(directory_table)
    directory.publish_batch(profiles)
    result = benchmark(directory.query_batch, stream)
    assert len(result) == len(stream)


def test_flat_linear_stream(benchmark, directory_table, query_workload):
    profiles, stream = query_workload
    directory = FlatDirectory(directory_table, use_interval_index=False)
    directory.publish_batch(profiles)
    result = benchmark(directory.query_batch, stream)
    assert len(result) == len(stream)


def test_query_cache_report(benchmark, directory_table, query_workload):
    """The committed series: cold/warm, linear/indexed, loop/batch."""
    profiles, stream = query_workload
    rows: list[list[object]] = []

    # -- cold vs warm (per-query µs over the whole stream) ---------------
    cold_directory = _fresh_semantic(directory_table, profiles)
    cold_start = time.perf_counter()
    cold_directory.query_batch(stream)
    cold_us = (time.perf_counter() - cold_start) / len(stream) * 1e6
    cold_hit_rate = cold_directory.distance_cache.stats.hit_rate

    warm_us = _mean_us(lambda: cold_directory.query_batch(stream), repeats=3) / len(stream)
    warm_hit_rate = cold_directory.distance_cache.stats.hit_rate
    rows.append(["semantic cold", f"{cold_us:.1f}", f"{cold_hit_rate:.1%}"])
    rows.append(["semantic warm", f"{warm_us:.1f}", f"{warm_hit_rate:.1%}"])

    # -- flat linear vs flat indexed -------------------------------------
    linear = FlatDirectory(directory_table, use_interval_index=False)
    linear.publish_batch(profiles)
    indexed = FlatDirectory(directory_table)
    indexed.publish_batch(profiles)
    linear_us = _mean_us(lambda: linear.query_batch(stream), repeats=2) / len(stream)
    indexed_us = _mean_us(lambda: indexed.query_batch(stream), repeats=2) / len(stream)
    rows.append(["flat linear", f"{linear_us:.1f}", "-"])
    rows.append(["flat indexed", f"{indexed_us:.1f}", "-"])

    # -- batch vs one-at-a-time ------------------------------------------
    warm = cold_directory

    def loop():
        for request in stream:
            warm.query(request)

    loop_us = _mean_us(loop, repeats=3) / len(stream)
    batch_us = _mean_us(lambda: warm.query_batch(stream), repeats=3) / len(stream)
    rows.append(["semantic loop", f"{loop_us:.1f}", "-"])
    rows.append(["semantic batch", f"{batch_us:.1f}", "-"])

    # Shape assertions mirroring docs/PERFORMANCE.md's claims.
    assert warm_us <= cold_us
    assert indexed_us < linear_us
    assert batch_us <= loop_us * 1.1  # batching never meaningfully worse
    assert warm_hit_rate > 0.5

    table = series_table(["configuration", "us/query", "cache hit rate"], rows)
    notes = "\n".join(
        [
            f"{SERVICES} services, {DISTINCT_REQUESTS} distinct requests, "
            f"Zipf(s={ZIPF_EXPONENT}) stream of {STREAM_LENGTH}",
            f"interval-index speedup over linear flat scan: {linear_us / indexed_us:.1f}x",
        ]
    )
    save_report(
        "query_cache",
        f"{table}\n\n{notes}",
        metrics={
            "cold_us_per_query": (cold_us, "us"),
            "warm_us_per_query": (warm_us, "us"),
            "flat_linear_us_per_query": (linear_us, "us"),
            "flat_indexed_us_per_query": (indexed_us, "us"),
            "semantic_loop_us_per_query": (loop_us, "us"),
            "semantic_batch_us_per_query": (batch_us, "us"),
            "warm_hit_rate": (warm_hit_rate, "fraction"),
        },
        config={
            "services": SERVICES,
            "distinct_requests": DISTINCT_REQUESTS,
            "zipf_exponent": ZIPF_EXPONENT,
            "stream_length": STREAM_LENGTH,
            "seed": SEED,
            "workload_seed": 42,
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

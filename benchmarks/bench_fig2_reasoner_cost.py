"""Experiment E1/E2 — Fig. 2: cost of on-line semantic matching.

Paper setting (§2.4): match one requested against one provided capability,
7 inputs and 3 outputs each, over an ontology with 99 OWL classes and 39
properties, using three reasoners (Racer, FaCT++, Pellet → our three
classification strategies).  Paper findings to reproduce in shape:

* on-line semantic matching is orders of magnitude slower than syntactic
  matching (paper: seconds vs ~160 ms UDDI; we report the measured ratio);
* loading + classifying the ontologies takes 76–78 % of the total.
"""

from __future__ import annotations

import pytest

from benchmarks._report import save_report
from repro.ontology.owl_xml import ontology_to_xml
from repro.ontology.reasoner import ClassificationStrategy
from repro.registry.naive_semantic import OnlineMatchmaker
from repro.registry.syntactic import SyntacticRegistry
from repro.services.generator import ServiceWorkload
from repro.services.xml_codec import profile_to_xml, request_to_xml, wsdl_to_xml


@pytest.fixture(scope="module")
def documents(fig2_workload: ServiceWorkload):
    profile = fig2_workload.make_service(0)
    request = fig2_workload.matching_request(profile)
    return {
        "profile": profile_to_xml(profile),
        "request": request_to_xml(request),
        "ontologies": [ontology_to_xml(onto) for onto in fig2_workload.ontologies],
        "wsdl": wsdl_to_xml(ServiceWorkload.wsdl_twin(profile)),
        "wsdl_request": wsdl_to_xml(ServiceWorkload.wsdl_request_for(profile)),
    }


@pytest.mark.parametrize("strategy", list(ClassificationStrategy), ids=lambda s: s.value)
def test_online_match_per_reasoner(benchmark, documents, strategy):
    """One full on-line match (parse + load + classify + query) per
    'reasoner'."""
    matchmaker = OnlineMatchmaker(strategy=strategy)

    def run():
        return matchmaker.match_documents(
            documents["profile"], documents["request"], documents["ontologies"]
        )

    report = benchmark(run)
    assert report.outcome.matched


def test_syntactic_match_reference(benchmark, documents):
    """The UDDI-style reference point: publish + conformance query."""
    registry = SyntacticRegistry()
    registry.publish_xml(documents["wsdl"])

    def run():
        return registry.query_xml(documents["wsdl_request"])

    hits = benchmark(run)
    assert hits


def test_fig2_report(benchmark):
    """Regenerates the Fig. 2 rows: per-reasoner phase breakdown."""
    from repro.experiments import fig2_reasoner_cost

    result = fig2_reasoner_cost()
    # Paper: 76–78 % across reasoners.  Our enumerative strategy lands in
    # that band; the pruned strategies do less classification work by
    # design, so the floor is generous (parse is stdlib ElementTree, far
    # faster than a 2006 DOM stack, which also shrinks the share).
    assert result.extras["share_enumerative"] > 0.55
    for strategy in ClassificationStrategy:
        assert result.extras[f"share_{strategy.value}"] > 0.35, strategy
    # The headline gap: on-line semantic matching is orders of magnitude
    # slower than syntactic conformance checking.
    assert result.extras["semantic_syntactic_ratio"] > 20
    units = {
        name: "seconds"
        if name.endswith("_seconds")
        else "ratio"
        if name.endswith("_ratio")
        else "fraction"
        for name in result.extras
    }
    save_report(
        "fig2_reasoner_cost",
        result.render(),
        metrics=result.extras,
        config={"seed": 42, "repeats": 5},
        units=units,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Experiment E5 — Fig. 9: time to match a service request.

Paper setting (§5): directories caching 1→100 services answer a
single-capability request; the classified (optimized) directory is
compared with an unclassified one.  Findings to reproduce in shape:

* the non-optimized directory is meaningfully slower (paper: ~+50 %);
* the optimized directory's response time is nearly constant in the
  directory size and in the order of a few milliseconds at most (ours is
  well below — 2026 hardware and no 2006 XML stack);
* results are reported without request parse time, as in the paper.

A third series shows the flat directory with the sorted interval index
(docs/PERFORMANCE.md): identical result sets, but candidate entries are
found by bisection instead of scanning every cached capability.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._report import save_report
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.services.generator import ServiceWorkload

DIRECTORY_SIZES = [1, 20, 40, 60, 80, 100]
REPEATS = 50


@pytest.fixture(scope="module")
def populations(directory_workload: ServiceWorkload, directory_table):
    classified = {}
    flat = {}
    flat_indexed = {}
    for size in DIRECTORY_SIZES:
        semantic = SemanticDirectory(directory_table)
        # The paper's non-optimized baseline is a genuine linear scan.
        baseline = FlatDirectory(directory_table, use_interval_index=False)
        indexed = FlatDirectory(directory_table)
        profiles = [directory_workload.make_service(index) for index in range(size)]
        semantic.publish_batch(profiles)
        baseline.publish_batch(profiles)
        indexed.publish_batch(profiles)
        classified[size] = semantic
        flat[size] = baseline
        flat_indexed[size] = indexed
    # Target service 0 so the request has a genuine answer at every size.
    request = directory_workload.matching_request(directory_workload.make_service(0))
    return classified, flat, flat_indexed, request


def _mean_query_seconds(directory, request, repeats=REPEATS) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        directory.query(request)
    return (time.perf_counter() - start) / repeats


def test_optimized_query_100(benchmark, populations):
    classified, _flat, _flat_indexed, request = populations
    hits = benchmark(classified[100].query, request)
    assert hits


def test_flat_query_100(benchmark, populations):
    _classified, flat, _flat_indexed, request = populations
    hits = benchmark(flat[100].query, request)
    assert hits


def test_flat_indexed_query_100(benchmark, populations):
    """Flat directory accelerated by the interval index — same results."""
    _classified, flat, flat_indexed, request = populations
    hits = benchmark(flat_indexed[100].query, request)
    assert hits

    def key(match):
        return (match.distance, match.service_uri, match.capability.uri)

    assert sorted(hits, key=key) == sorted(flat[100].query(request), key=key)


def test_fig9_report(benchmark):
    """Regenerates the Fig. 9 series: optimized vs non-optimized."""
    from repro.experiments import fig9_match_request

    result = fig9_match_request()
    flat_times = [result.extras[f"flat_{size}"] for size in DIRECTORY_SIZES]
    indexed_times = [result.extras[f"flat_indexed_{size}"] for size in DIRECTORY_SIZES]
    optimized_times = [result.extras[f"optimized_{size}"] for size in DIRECTORY_SIZES]
    # Shape checks: flat degrades with size, classified stays flatter and
    # is faster at the maximum size, and the interval index beats the
    # linear scan decisively at the maximum size.
    assert flat_times[-1] > flat_times[0]
    assert flat_times[-1] > optimized_times[-1]
    flat_growth = flat_times[-1] / max(flat_times[0], 1e-9)
    optimized_growth = optimized_times[-1] / max(optimized_times[0], 1e-9)
    assert optimized_growth < flat_growth
    assert flat_times[-1] > 1.5 * indexed_times[-1]
    units = {
        name: "ratio" if name.endswith("_at_max") else "seconds"
        for name in result.extras
    }
    save_report(
        "fig9_match_request",
        result.render(),
        metrics=result.extras,
        config={"sizes": DIRECTORY_SIZES, "seed": 42},
        units=units,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

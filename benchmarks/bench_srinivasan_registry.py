"""Experiment E9 — §3.1's publish/query trade-off (after [13]).

Paper text: "the publishing phase using this algorithm takes around seven
times the time taken by UDDI to publish a service ... On the other hand,
the time to process a query is in the order of milliseconds", because all
subsumption information is precomputed into annotation lists at publish
time and querying reduces to lookups and intersections.

The experiment measures, on the same population: publish cost of the
annotated-taxonomy registry vs the plain syntactic registry (expect a
large multiple), and query cost (expect lookup speed, no reasoning).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._report import save_report
from repro.registry.srinivasan import AnnotatedTaxonomyRegistry
from repro.services.generator import ServiceWorkload

SERVICES = 100


@pytest.fixture(scope="module")
def population(directory_workload: ServiceWorkload):
    profiles = directory_workload.make_services(SERVICES)
    twins = [ServiceWorkload.wsdl_twin(profile) for profile in profiles]
    return profiles, twins


def test_annotated_publish(benchmark, directory_workload, population):
    profiles, _twins = population

    def run():
        registry = AnnotatedTaxonomyRegistry(directory_workload.taxonomy)
        for profile in profiles:
            registry.publish(profile)
        return registry

    registry = benchmark(run)
    assert len(registry) == SERVICES


def test_annotated_query(benchmark, directory_workload, population):
    profiles, _twins = population
    registry = AnnotatedTaxonomyRegistry(directory_workload.taxonomy)
    for profile in profiles:
        registry.publish(profile)
    request = directory_workload.matching_request(profiles[3]).capabilities[0]
    ranked = benchmark(registry.query_capability, request)
    assert any(r.service_uri == profiles[3].uri for r in ranked)


def test_e9_report(benchmark):
    from repro.experiments import e9_srinivasan_registry

    result = e9_srinivasan_registry(services=SERVICES)
    # Shape: annotated publish is a clear multiple of the syntactic one,
    # queries stay far below a single on-line reasoning pass (~10 ms).
    assert result.extras["publish_ratio"] > 2.0
    assert result.extras["query_seconds"] < 0.005
    save_report(
        "e9_srinivasan_registry",
        result.render(),
        metrics=result.extras,
        config={"services": SERVICES, "seed": 42},
        units={"publish_ratio": "ratio", "query_seconds": "seconds"},
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Experiment E8 — §3.1's numeric-index trade-off (after [3]).

Paper text: "Combining both encoding and indexing techniques allows
performing efficient service search, in the order of milliseconds for
trees of 10000 entries.  However, insertion within trees of the previous
size is still a heavy process" (paper: ~3 s in 2003).  The experiment
measures search vs insertion on the R-tree at growing sizes: searches must
stay in the sub-millisecond/millisecond range while bulk insertion costs
orders of magnitude more.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._report import save_report
from repro.registry.gist import GistIndex, Rect

SIZES = [100, 1_000, 5_000, 10_000]


def random_rect(rng: random.Random) -> Rect:
    x = rng.random() * 0.99
    width = rng.random() * 0.01 + 1e-6
    return Rect(x, min(1.0, x + width), 0.0, 1.0)


def build_index(size: int, seed: int = 0) -> GistIndex:
    rng = random.Random(seed)
    index = GistIndex()
    for i in range(size):
        index.insert(random_rect(rng), f"svc{i}")
    return index


@pytest.fixture(scope="module")
def big_index():
    return build_index(10_000)


def test_search_10k(benchmark, big_index):
    rng = random.Random(99)
    probes = [random_rect(rng) for _ in range(100)]

    def run():
        return [big_index.search(probe) for probe in probes]

    results = benchmark(run)
    assert len(results) == 100


def test_insert_one_into_10k(benchmark, big_index):
    rng = random.Random(7)

    def run():
        big_index.insert(random_rect(rng), "probe")

    benchmark(run)


def test_e8_report(benchmark):
    from repro.experiments import e8_gist_directory

    result = e8_gist_directory(sizes=SIZES)
    for size in SIZES:
        # The paper's shape: searching stays cheap; building the directory
        # costs orders of magnitude more than one search.
        assert result.extras[f"search_{size}"] < 0.005
        assert result.extras[f"build_{size}"] > 50 * result.extras[f"search_{size}"]
    save_report(
        "e8_gist_directory",
        result.render(),
        metrics=result.extras,
        config={"sizes": SIZES, "seed": 0, "query_seeds": [99, 7]},
        units="seconds",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Experiment E4 — Fig. 8: time to publish one service advertisement.

Paper setting (§5): a directory already caching 1→100 services receives a
new advertisement.  Findings to reproduce in shape:

* insertion (classification into graphs) is negligible vs XML parsing;
* insertion time is ~constant in the directory size, because the ontology
  index preselects the graph and only a few semantic matches run.
"""

from __future__ import annotations

import pytest

from benchmarks._report import save_report
from repro.core.directory import SemanticDirectory
from repro.services.xml_codec import profile_to_xml

DIRECTORY_SIZES = [1, 20, 40, 60, 80, 100]
PROBE_INDEX = 10_000  # a service outside the preloaded population


@pytest.fixture(scope="module")
def preloaded(directory_workload, directory_table):
    """Directories preloaded at each size, plus the new advertisement."""
    table = directory_table
    directories = {}
    for size in DIRECTORY_SIZES:
        directory = SemanticDirectory(table)
        for index in range(size):
            directory.publish(directory_workload.make_service(index))
        directories[size] = directory
    profile = directory_workload.make_service(PROBE_INDEX)
    document = profile_to_xml(
        profile, annotations=table.annotate(profile.provided), codes_version=table.version
    )
    return directories, profile, document


def test_publish_into_100(benchmark, preloaded):
    """Benchmark target: publish one advertisement into a full directory."""
    directories, profile, document = preloaded
    directory = directories[100]

    def run():
        directory.publish_xml(document)
        directory.unpublish(profile.uri)

    benchmark(run)


def test_fig8_report(benchmark):
    """Regenerates the Fig. 8 series: parse / insert / total, plus the
    near-constant-insertion check."""
    from repro.experiments import fig8_publish

    result = fig8_publish()
    insert_times = [result.extras[f"insert_{size}"] for size in DIRECTORY_SIZES]
    for size in DIRECTORY_SIZES:
        # Same caveat as Fig. 7: our XML parse is relatively much faster
        # than the paper's, so insert and parse are comparable; the claim
        # that survives any stack is that insertion never dwarfs parsing.
        # Both sides are sub-millisecond means, so leave an order of
        # magnitude of headroom (plus a 10 µs floor) for loaded runners —
        # this bench now runs in CI via tools/make_artifacts.py.
        assert result.extras[f"insert_{size}"] < 10 * max(
            result.extras[f"parse_{size}"], 1e-5
        )
    # Insertion must not grow linearly with directory size: allow noise but
    # require the largest directory to stay within 5x of the smallest
    # (Ariadne-style linear growth would be ~100x).
    assert max(insert_times) < 5 * max(min(insert_times), 1e-5)
    save_report(
        "fig8_publish",
        result.render(),
        metrics=result.extras,
        config={"sizes": DIRECTORY_SIZES, "seed": 42},
        units="seconds",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Sharded directory tier: sustained QPS and p99 latency vs shard count.

A :class:`~repro.core.sharding.ShardRouter` partitions advertisements
across K shard directories by ontology-set hash — the same keying the
Bloom summaries use — so the router can prune shards that cannot answer
a request before fanning out.  This sweep publishes a large synthetic
catalog once into an 8-shard router and then measures query throughput
at K = 8, 4, 2, 1, using :meth:`ShardRouter.resize` merges between
measurements (8→4→2→1 are whole-shard moves on the power-of-two fast
path, so the population is bit-identical at every K).

The scale workload draws each service from a *single* large ontology
(``ontologies_per_service=1`` over ``generate_large_ontology`` suites),
the regime the shard keying is built for: a request's ontology set then
admits ~1 of 8 shards, so scatter/gather touches ~1/K of the catalog.

Gates (hard asserts, also exported for ``obs regress``):

* sharded scatter/gather returns **bit-identical ranked results** to a
  single unsharded directory on the paper-shaped Fig. 10 workload
  (order included, not just set equality);
* sustained QPS with 8 shards is ≥ 3× the single-shard QPS at the
  largest size measured (``qps_speedup_8v1_at_max``);
* resize merges lose nothing: capability count is invariant across
  8→4→2→1.

Smoke mode (``REPRO_BENCH_SMOKE=1``) runs 2·10⁴ capabilities; the full
run does 10⁵, and ``REPRO_BENCH_XL=1`` does 10⁶ (minutes of publish
time alone).
"""

from __future__ import annotations

import os
import time

from benchmarks._report import save_report
from repro.core.codes import CodeTable
from repro.core.directory import FlatDirectory
from repro.core.sharding import ShardRouter
from repro.ontology.generator import generate_large_ontology
from repro.ontology.registry import OntologyRegistry
from repro.services.generator import ServiceWorkload, WorkloadShape

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
XL = bool(os.environ.get("REPRO_BENCH_XL"))

SERVICES = 20_000 if SMOKE else (1_000_000 if XL else 100_000)
#: Shard counts measured, largest first: 8→4→2→1 are fast-path merges.
SHARD_COUNTS = [8, 4, 2, 1]
SPEEDUP_FLOOR = 3.0

#: Scale-workload shape: each service's concepts come from one ontology,
#: so its shard key is that ontology's URI and Bloom pruning can steer a
#: request to ~1 shard.  64 ontologies spread the keys evenly over 8.
#: Single-rooted: 64 ontologies × 1 root keeps the top-level slot index
#: under THING small enough that float64 interval codes still have
#: mantissa bits left for the per-ontology trees (geometric slot widths
#: consume ~``i/k`` bits for root index ``i``).
#: Catalog scale is *services*, not concepts: 200-concept trees keep the
#: encoded depth well inside the float64 budget under 64 top-level slots
#: while giving each service plenty of concept diversity.
ONTOLOGY_COUNT = 64
CONCEPTS_PER_ONTOLOGY = 200
ONTOLOGY_SEED = 11
SCALE_WORKLOAD_SEED = 7
FIG10_WORKLOAD_SEED = 42
QUERY_COUNT = 48 if SMOKE else 64


def _scale_workload() -> ServiceWorkload:
    ontologies = [
        generate_large_ontology(
            f"http://repro.example.org/scale/{index}",
            concepts=CONCEPTS_PER_ONTOLOGY,
            seed=ONTOLOGY_SEED + index,
            roots=1,
        )
        for index in range(ONTOLOGY_COUNT)
    ]
    shape = WorkloadShape(ontologies_per_service=1)
    return ServiceWorkload(shape, seed=SCALE_WORKLOAD_SEED, ontologies=ontologies)


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.999))]


def _rows(matches) -> list[tuple[str, str, int]]:
    """Ranked result rows *in order* — equality below is bit-identical,
    not set-equal."""
    return [(m.service_uri, m.capability.uri, m.distance) for m in matches]


def test_sharding_equality_fig10():
    """Sharded scatter/gather ≡ one unsharded directory, ranked order
    included, on the paper-shaped workload."""
    workload = ServiceWorkload(WorkloadShape(), seed=FIG10_WORKLOAD_SEED)
    table = CodeTable(OntologyRegistry(workload.ontologies))
    router = ShardRouter(table, 8)
    flat = FlatDirectory(table, use_interval_index=False, use_batch_engine=True)
    population = 120 if SMOKE else 300
    for profile in workload.iter_services(population):
        router.publish(profile)
        flat.publish(profile)
    requests = [
        workload.matching_request(workload.make_service(i)) for i in range(40)
    ] + [workload.unrelated_request(i) for i in range(5)]
    batched = router.query_batch(requests)
    for request, sharded_rows in zip(requests, batched):
        assert _rows(sharded_rows) == _rows(flat.query(request)), (
            f"sharded/unsharded divergence for {request.uri}"
        )
        assert _rows(router.query(request)) == _rows(sharded_rows)


def test_directory_sharding_report():
    workload = _scale_workload()
    table = CodeTable(OntologyRegistry(workload.ontologies))
    router = ShardRouter(table, max(SHARD_COUNTS))

    publish_start = time.perf_counter()
    # iter_services streams the population — no profile list at 10⁵–10⁶.
    router.publish_batch(workload.iter_services(SERVICES))
    publish_s = time.perf_counter() - publish_start
    assert router.capability_count >= SERVICES

    requests = [
        workload.matching_request(workload.make_service(index * 97 % SERVICES))
        for index in range(QUERY_COUNT)
    ]
    expected = [_rows(rows) for rows in router.query_batch(requests)]  # warm
    fanout = sum(len(router.admitted_shards(r)) for r in requests) / len(requests)

    metrics: dict[str, object] = {"publish_s": publish_s}
    lines = [
        f"capabilities = {router.capability_count}  "
        f"(services {SERVICES}, publish {publish_s:.1f}s)",
        f"mean admitted shards at K=8: {fanout:.2f} of 8",
        f"{'shards':>7} {'qps':>10} {'p99 ms':>9} {'mean ms':>9} {'skew':>6}",
    ]
    qps_by_k: dict[int, float] = {}

    for shard_count in SHARD_COUNTS:
        if router.shard_count != shard_count:
            before = router.capability_count
            router.resize(shard_count, cause="bench_sweep")
            assert router.capability_count == before, (
                f"resize to {shard_count} shards lost advertisements"
            )
        # Results stay bit-identical at every K (the gates in
        # test_sharding_equality_fig10 prove order; this proves content
        # survives the merges on the scale population too).
        assert [_rows(rows) for rows in router.query_batch(requests)] == expected

        samples: list[float] = []
        per_query_rounds = max(4, 256 // len(requests))
        for _ in range(per_query_rounds):
            for request in requests:
                start = time.perf_counter()
                router.query(request)
                samples.append(time.perf_counter() - start)
        sustained_rounds = max(3, 1500 // len(requests))
        start = time.perf_counter()
        for _ in range(sustained_rounds):
            router.query_batch(requests)
        elapsed = time.perf_counter() - start
        qps = sustained_rounds * len(requests) / elapsed
        qps_by_k[shard_count] = qps
        p99 = _p99(samples)
        mean = sum(samples) / len(samples)
        metrics[f"qps_s{SERVICES}_k{shard_count}"] = qps
        metrics[f"p99_s{SERVICES}_k{shard_count}"] = p99
        lines.append(
            f"{shard_count:>7} {qps:>10.1f} {p99 * 1e3:>9.3f} "
            f"{mean * 1e3:>9.3f} {router.skew():>6.2f}"
        )

    speedup = qps_by_k[8] / max(qps_by_k[1], 1e-12)
    metrics["qps_speedup_8v1_at_max"] = speedup
    lines.append(
        f"sustained QPS speedup 8 vs 1 shards at {SERVICES} services: "
        f"{speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"8-shard sustained QPS is only {speedup:.2f}x the single-shard rate "
        f"at {SERVICES} services, below the {SPEEDUP_FLOOR}x floor"
    )

    units = {
        name: (
            "ratio"
            if "speedup" in name
            else "queries/s" if name.startswith("qps") else "seconds"
        )
        for name in metrics
    }
    save_report(
        "directory_sharding",
        "\n".join(lines),
        metrics=metrics,
        config={
            "services": SERVICES,
            "shard_counts": SHARD_COUNTS,
            "queries": QUERY_COUNT,
            "ontologies": ONTOLOGY_COUNT,
            "concepts_per_ontology": CONCEPTS_PER_ONTOLOGY,
            "ontology_seed": ONTOLOGY_SEED,
            "workload_seed": SCALE_WORKLOAD_SEED,
            "fig10_seed": FIG10_WORKLOAD_SEED,
            "smoke": SMOKE,
            "xl": XL,
        },
        units=units,
    )

"""Batch matching engine scaling: per-query latency from 10² to 10⁵⁺.

The packed engine (``repro.core.packed``) answers one request against the
whole directory with a few passes over contiguous columns; this sweep
pits it against the scalar per-entry matcher on identical content:

* ``scalar`` — ``FlatDirectory(use_interval_index=False)``: the paper's
  linear scan, one ``match_outcome`` per cached capability (measured only
  up to 10⁴ entries; beyond that it is minutes per point);
* ``batch`` — the same directory with ``use_batch_engine=True``
  (auto-detected backend, numpy when available);
* ``stdlib`` — the engine forced to the pure-stdlib backend, showing the
  packed layout pays even without numpy.

Gates (hard asserts, also exported for ``obs regress``):

* batch and scalar return identical match sets at every co-measured size;
* batch is ≥ 3× faster than scalar at 10⁴ capabilities;
* batch per-query latency stays within 20× from 10² to the largest size
  measured (near-flat on log-log; the scalar path grows ~100× per decade).

Smoke mode (``REPRO_BENCH_SMOKE=1``) sweeps 10²–10⁴; the full run adds
10⁵, and ``REPRO_BENCH_XL=1`` adds 10⁶ (minutes of publish time alone).
"""

from __future__ import annotations

import os
import time

from benchmarks._report import save_report
from repro.core.codes import CodeTable
from repro.core.directory import FlatDirectory
from repro.core.packed import BatchMatchEngine, default_backend
from repro.ontology.registry import OntologyRegistry
from repro.services.generator import ServiceWorkload, WorkloadShape

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
XL = bool(os.environ.get("REPRO_BENCH_XL"))

SIZES = [100, 1_000, 10_000] if SMOKE else [100, 1_000, 10_000, 100_000]
if XL and not SMOKE:
    SIZES.append(1_000_000)
#: Largest size the scalar linear scan is measured at.
SCALAR_CAP = 10_000
#: The size the ≥3× speedup floor is gated at.
GATE_SIZE = 10_000
SPEEDUP_FLOOR = 3.0


def _mean_query_seconds(fn, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def _repeats_for(size: int) -> int:
    return max(3, min(30, 300_000 // size))


def _canon(matches) -> list[tuple[str, str, int]]:
    return sorted((m.service_uri, m.capability.uri, m.distance) for m in matches)


def test_match_scaling_report():
    workload = ServiceWorkload(WorkloadShape(), seed=42)
    table = CodeTable(OntologyRegistry(workload.ontologies))
    request = workload.matching_request(workload.make_service(0))

    metrics: dict[str, object] = {}
    lines = [
        f"backend (auto) = {default_backend()}",
        f"{'capabilities':>12} {'scalar ms':>12} {'batch ms':>12} "
        f"{'stdlib ms':>12} {'speedup':>9} {'pruned %':>9}",
    ]
    batch_series: dict[int, float] = {}
    scalar_series: dict[int, float] = {}

    for size in SIZES:
        batch_dir = FlatDirectory(table, use_interval_index=False, use_batch_engine=True)
        scalar_dir = FlatDirectory(table, use_interval_index=False)
        measure_scalar = size <= SCALAR_CAP
        # iter_services streams the population: no profile list is ever
        # materialized, so 10⁵–10⁶ sizes stay within bounded generator
        # memory (the directory itself holds the published capabilities).
        for profile in workload.iter_services(size):
            batch_dir.publish(profile)
            if measure_scalar:
                scalar_dir.publish(profile)

        repeats = _repeats_for(size)
        batch_hits = batch_dir.query(request)  # warm: builds the packed table
        batch_s = _mean_query_seconds(lambda: batch_dir.query(request), repeats)
        batch_series[size] = batch_s
        metrics[f"batch_s_{size}"] = batch_s

        engine_stdlib = BatchMatchEngine(
            {eid: cap for eid, (cap, _uri) in batch_dir._entries.items()},
            batch_dir._lookup,
            backend="stdlib",
        )
        requested = request.capabilities[0]
        stdlib_s = _mean_query_seconds(
            lambda: engine_stdlib.match_capability(requested, batch_dir._lookup),
            repeats,
        )
        metrics[f"stdlib_s_{size}"] = stdlib_s
        _pairs, qstats = engine_stdlib.match_capability(requested, batch_dir._lookup)
        pruned_pct = 100.0 * qstats.pruned / max(1, qstats.batch_size)

        if measure_scalar:
            scalar_hits = scalar_dir.query(request)
            assert _canon(batch_hits) == _canon(scalar_hits), (
                f"batch/scalar result divergence at size {size}"
            )
            scalar_repeats = max(3, repeats // 5)
            scalar_s = _mean_query_seconds(
                lambda: scalar_dir.query(request), scalar_repeats
            )
            scalar_series[size] = scalar_s
            metrics[f"scalar_s_{size}"] = scalar_s
            speedup = scalar_s / max(batch_s, 1e-12)
            speedup_txt = f"{speedup:8.1f}x"
            scalar_txt = f"{scalar_s * 1e3:12.3f}"
        else:
            speedup_txt = f"{'—':>9}"
            scalar_txt = f"{'—':>12}"
        lines.append(
            f"{size:>12} {scalar_txt} {batch_s * 1e3:12.3f} "
            f"{stdlib_s * 1e3:12.3f} {speedup_txt} {pruned_pct:8.1f}%"
        )

    # --- gates ---------------------------------------------------------
    gate_speedup = scalar_series[GATE_SIZE] / max(batch_series[GATE_SIZE], 1e-12)
    metrics["batch_speedup_at_10000"] = gate_speedup
    assert gate_speedup >= SPEEDUP_FLOOR, (
        f"batch engine speedup at {GATE_SIZE} capabilities is "
        f"{gate_speedup:.1f}x, below the {SPEEDUP_FLOOR}x floor"
    )
    largest = max(batch_series)
    flatness = batch_series[largest] / max(batch_series[min(batch_series)], 1e-12)
    metrics["batch_latency_growth"] = flatness
    assert flatness < 20.0 * (largest / min(batch_series)) ** 0.25, (
        f"batch latency grew {flatness:.1f}x from {min(batch_series)} to "
        f"{largest} capabilities — no longer near-flat"
    )
    lines.append(
        f"speedup at {GATE_SIZE}: {gate_speedup:.1f}x (floor {SPEEDUP_FLOOR}x); "
        f"batch latency growth {min(batch_series)}→{largest}: {flatness:.1f}x"
    )

    units = {
        name: "ratio" if "speedup" in name or "growth" in name else "seconds"
        for name in metrics
    }
    save_report(
        "match_scaling",
        "\n".join(lines),
        metrics=metrics,
        config={
            "sizes": SIZES,
            "seed": 42,
            "smoke": SMOKE,
            "scalar_cap": SCALAR_CAP,
            "backend": default_backend(),
        },
        units=units,
    )

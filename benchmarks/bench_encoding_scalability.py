"""Experiment E7 — §3.2's encoding scalability claims.

Paper text: "for p=2 and k=5, and a system encoding real numbers as 64
bits doubles, the maximum number of entries that we can have on the first
level of the hierarchy is 1071 and the maximum number of levels ... is
462".  Our slot layout differs in constants; this experiment measures the
same two capacities for it, plus the float-vs-exact ablation (exact
Fractions remove the limits at a CPU cost).
"""

from __future__ import annotations

import pytest

from benchmarks._report import save_report
from repro.core.encoding import IntervalEncoder
from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.reasoner import Reasoner


@pytest.fixture(scope="module")
def deep_taxonomy():
    onto = generate_ontology(
        "http://repro.example.org/enc",
        OntologyShape(concepts=300, properties=20),
        seed=9,
    )
    return Reasoner().load([onto]).classify()


def test_encode_300_concepts_float(benchmark, deep_taxonomy):
    encoded = benchmark(IntervalEncoder(exact=False).encode, deep_taxonomy)
    assert len(encoded) >= 300


def test_encode_300_concepts_exact(benchmark, deep_taxonomy):
    encoded = benchmark(IntervalEncoder(exact=True).encode, deep_taxonomy)
    assert len(encoded) >= 300


def test_e7_report(benchmark):
    from repro.experiments import e7_encoding_scalability

    result = e7_encoding_scalability()
    # Same order of magnitude as the paper's constants (1071 / 462).
    assert result.extras["first_p2k5"] >= 200
    assert result.extras["depth_p2k5"] >= 200
    # Exact arithmetic trades CPU for unlimited capacity.
    assert result.extras["exact_seconds"] > result.extras["float_seconds"]
    units = {
        name: "seconds"
        if name.endswith("_seconds")
        else "entries"
        if name.startswith("first_")
        else "levels"
        for name in result.extras
    }
    save_report(
        "e7_encoding_scalability",
        result.render(),
        metrics=result.extras,
        config={"seed": 9, "concepts": 300},
        units=units,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

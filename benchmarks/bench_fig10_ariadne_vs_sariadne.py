"""Experiment E6 — Fig. 10: Ariadne vs S-Ariadne response time.

Paper setting (§5): directories caching 1→100 services; Ariadne performs
classical syntactic matching ("syntactically comparing the WSDL
descriptions" — descriptions are kept as documents and processed per
query), while S-Ariadne parses once at publication, matches numerically
and searches classified graphs.  Findings to reproduce in shape:

* Ariadne's response time grows with the number of cached services;
* S-Ariadne's stays nearly stable — and is the faster of the two at the
  paper's maximum population.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._report import ms, save_report
from repro.core.directory import SemanticDirectory
from repro.registry.syntactic import WsdlDocumentRegistry
from repro.services.generator import ServiceWorkload
from repro.services.xml_codec import profile_to_xml, request_to_xml, wsdl_to_xml

#: Smoke mode (CI): one small size sweep, one seed — exercises the whole
#: pipeline in seconds instead of regenerating the full paper series.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Traced mode: re-run the Fig. 10 scenario over the simulated backbone
#: with observability enabled and emit the hop-level breakdown as JSONL.
TRACE = bool(os.environ.get("REPRO_BENCH_TRACE"))
DIRECTORY_SIZES = [1, 20] if SMOKE else [1, 20, 40, 60, 80, 100]
REPEATS = 2 if SMOKE else 10
TRIAL_SEEDS = [42] if SMOKE else [42, 43, 44]


@pytest.fixture(scope="module")
def populations(directory_workload: ServiceWorkload, directory_table):
    table = directory_table
    ariadne = {}
    sariadne = {}
    for size in DIRECTORY_SIZES:
        syntactic = WsdlDocumentRegistry()
        semantic = SemanticDirectory(table)
        for index in range(size):
            profile = directory_workload.make_service(index)
            syntactic.publish_xml(wsdl_to_xml(ServiceWorkload.wsdl_twin(profile)))
            semantic.publish_xml(
                profile_to_xml(
                    profile,
                    annotations=table.annotate(profile.provided),
                    codes_version=table.version,
                )
            )
        ariadne[size] = syntactic
        sariadne[size] = semantic
    target = directory_workload.make_service(0)
    request = directory_workload.matching_request(target)
    request_doc = request_to_xml(
        request,
        annotations=table.annotate(request.capabilities),
        codes_version=table.version,
    )
    wsdl_request_doc = wsdl_to_xml(ServiceWorkload.wsdl_request_for(target))
    return ariadne, sariadne, request_doc, wsdl_request_doc


def _mean_seconds(fn, repeats=REPEATS) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_ariadne_query_100(benchmark, populations):
    ariadne, _sariadne, _request_doc, wsdl_request_doc = populations
    hits = benchmark(ariadne[DIRECTORY_SIZES[-1]].query_xml, wsdl_request_doc)
    assert hits


def test_sariadne_query_100(benchmark, populations):
    _ariadne, sariadne, request_doc, _wsdl = populations
    hits = benchmark(sariadne[DIRECTORY_SIZES[-1]].query_xml, request_doc)
    assert hits


def _fig10_trial(seed: int):
    """One Fig. 10 regeneration (module-level so it can cross to workers)."""
    from repro.experiments import fig10_ariadne_vs_sariadne

    return fig10_ariadne_vs_sariadne(seed=seed, sizes=DIRECTORY_SIZES, repeats=REPEATS)


def test_fig10_report(benchmark):
    """Regenerates the Fig. 10 series, one trial per seed in parallel."""
    from repro.experiments import merge_trial_results, run_trials

    trials = run_trials(_fig10_trial, TRIAL_SEEDS)
    merged = merge_trial_results(trials)
    ariadne_times = [merged[f"ariadne_{size}"]["mean"] for size in DIRECTORY_SIZES]
    sariadne_times = [merged[f"sariadne_{size}"]["mean"] for size in DIRECTORY_SIZES]
    # Shape: Ariadne grows (document processing per query), S-Ariadne is
    # ~stable and wins at scale.  Smoke mode only checks the pipeline runs.
    if not SMOKE:
        assert ariadne_times[-1] > 5 * ariadne_times[0]
        assert ariadne_times[-1] > sariadne_times[-1]
        sariadne_growth = sariadne_times[-1] / max(sariadne_times[0], 1e-9)
        ariadne_growth = ariadne_times[-1] / max(ariadne_times[0], 1e-9)
        assert sariadne_growth < ariadne_growth / 2
    report = trials[0].render()
    report += (
        f"\nmeans over {len(TRIAL_SEEDS)} seed(s) {TRIAL_SEEDS}: "
        + ", ".join(
            f"{size}: A {stats_a:.4f}s / S {stats_s:.4f}s"
            for size, stats_a, stats_s in zip(
                DIRECTORY_SIZES, ariadne_times, sariadne_times
            )
        )
    )
    save_report(
        "fig10_ariadne_vs_sariadne",
        report,
        metrics={
            name: stats["mean"]
            for name, stats in merged.items()
            if name.startswith(("ariadne_", "sariadne_"))
        },
        config={"sizes": DIRECTORY_SIZES, "repeats": REPEATS, "seeds": TRIAL_SEEDS},
        units="seconds",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.skipif(not TRACE, reason="set REPRO_BENCH_TRACE=1 for the traced mode")
def test_fig10_traced():
    """Traced Fig. 10 run over the simulated backbone.

    Writes ``benchmarks/results/trace_fig10.jsonl`` with the per-hop
    breakdown of every forwarded query and asserts the rendered report
    shows hop spans for each of them.
    """
    import pathlib

    from repro.experiments import fig10_traced_run
    from repro.obs import JsonlSink, Observability
    from repro.obs.report import load_run, render_timeline, render_trace_report

    outdir = pathlib.Path(__file__).parent / "results"
    outdir.mkdir(exist_ok=True)
    trace_path = outdir / "trace_fig10.jsonl"
    with JsonlSink(trace_path) as sink:
        obs = Observability(sinks=[sink])
        summary = fig10_traced_run(obs, seed=TRIAL_SEEDS[0], services=4)
        obs.close()
    assert summary["answered"] == summary["issued"]
    run = load_run(trace_path)
    report = render_trace_report(run["spans"], run["metrics"])
    for trace_id in summary["trace_ids"]:
        assert f"query {trace_id}" in report
    # Every query was published remotely, so every one forwarded.
    assert report.count("hop.forward") >= summary["issued"]
    assert "hop.remote" in report and "hop.response" in report
    assert "dir.queries" in report and "net.messages" in report
    # The lifecycle episode (late join, election, handoff) surfaced at
    # least three distinct event kinds, and the recorder produced
    # windowed deltas alongside them.
    kinds = {event["kind"] for event in run["events"]}
    assert len(kinds) >= 3
    assert any(window["deltas"] for window in run["timeseries"])
    print(report)
    print(render_timeline(run))

"""Reporting helpers shared by the benchmark harness.

Each experiment prints the same rows/series the paper plots and mirrors
them to ``benchmarks/results/<experiment>.txt`` so the artefacts survive
pytest's output capture.  ``EXPERIMENTS.md`` quotes these files.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections.abc import Callable

from repro.obs.export import run_manifest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(
    name: str,
    text: str,
    metrics: dict[str, object] | None = None,
    config: dict[str, object] | None = None,
    units: str | dict[str, str] = "",
) -> None:
    """Print a report block and persist it under ``benchmarks/results``.

    Alongside the human-readable ``<name>.txt``, a machine-readable
    ``BENCH_<name>.json`` is written whenever ``metrics`` is given — one
    ``{"name", "value", "units"}`` record per metric plus the benchmark
    ``config`` and a provenance ``manifest`` (git SHA, interpreter,
    platform) — so CI can collect, diff and regression-gate results
    without scraping tables.

    Args:
        metrics: ``{metric: value}``; a value may also be a
            ``(value, units)`` pair overriding the blanket ``units``.
        config: benchmark parameters (sizes, repeats, seeds).
        units: blanket units for all metrics, or ``{metric: units}``.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if metrics is None:
        return
    entries = []
    for metric, value in metrics.items():
        if isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], str):
            value, metric_units = value
        elif isinstance(units, dict):
            metric_units = units.get(metric, "")
        else:
            metric_units = units
        entries.append({"name": metric, "value": value, "units": metric_units})
    payload = {
        "benchmark": name,
        "config": config or {},
        "metrics": entries,
        "manifest": run_manifest(config=config),
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def series_table(header: list[str], rows: list[list[object]]) -> str:
    """Fixed-width table used by every experiment report."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(header[i]).rjust(widths[i]) for i in range(len(header)))]
    for row in rows:
        lines.append("  ".join(str(row[i]).rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def ms(seconds: float) -> str:
    """Milliseconds with three digits."""
    return f"{seconds * 1e3:.3f}"

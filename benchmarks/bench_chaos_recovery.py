"""Chaos experiment — recovery under the three canned fault plans.

The paper's §4 resilience claims (directory re-election, soft-state
refresh, Bloom-summary cooperation) are exercised by deterministic fault
injection: a directory hard-crash, a network partition with healing, and
a lossy-link chaos window.  For each plan we measure the discovery
success ratio per 10 s window and the recovery time — how long after the
fault the ratio returns to its pre-fault level.

The same seeded :class:`~repro.network.faults.FaultPlan` must reproduce
bit-identical trajectories (asserted below by running one plan twice), so
the committed baseline in ``benchmarks/baselines/`` gates these metrics
exactly via ``repro.cli obs regress``.
"""

from __future__ import annotations

import os

import pytest

from benchmarks._report import save_report, series_table
from repro.experiments import CHAOS_PLANS, chaos_recovery

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SEED = 0
#: Healing window for the regression gate: every plan must be back at its
#: pre-fault success ratio within this many seconds of the fault.
RECOVERY_DEADLINE_S = 60.0


def test_chaos_determinism():
    """Same plan + seed ⇒ identical trajectory, window for window."""
    first = chaos_recovery("lossy_links", seed=SEED)
    second = chaos_recovery("lossy_links", seed=SEED)
    assert first.rows == second.rows
    assert first.extras == second.extras


def test_chaos_recovery_report(benchmark):
    rows = []
    metrics: dict[str, float] = {}
    for plan_name in CHAOS_PLANS:
        result = chaos_recovery(plan_name, seed=SEED)
        extras = result.extras
        # The CI resilience contract: the success ratio returns to >= its
        # pre-fault baseline within the healing window, for every plan.
        assert extras["recovered"] == 1.0, f"{plan_name} never recovered"
        assert extras["recovery_s"] <= RECOVERY_DEADLINE_S
        assert extras["success_pre"] >= 0.75
        rows.append(
            [
                plan_name,
                f"{extras['success_pre']:.2f}",
                f"{extras['success_during']:.2f}",
                f"{extras['success_post']:.2f}",
                f"{extras['recovery_s']:.0f}s",
            ]
        )
        for key in ("success_pre", "success_during", "success_post", "recovery_s"):
            metrics[f"{plan_name}_{key}"] = extras[key]
        metrics[f"{plan_name}_recovered"] = extras["recovered"]
    table_text = series_table(
        ["plan", "pre", "impaired", "post", "recovery"], rows
    )
    table_text += (
        "\nsuccess = fraction of discovery requests answered with results per 10s window;"
        "\nrecovery = time from the fault to the first window back at the pre-fault ratio"
    )
    save_report(
        "chaos_recovery",
        table_text,
        metrics=metrics,
        config={"seed": SEED, "plans": list(CHAOS_PLANS), "smoke": SMOKE},
        units="fraction (success_*), seconds (recovery_s)",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.skipif(SMOKE, reason="full sweep only outside smoke mode")
def test_chaos_alternate_seed():
    """A different seed still recovers — the resilience is not a fluke of
    one placement."""
    for plan_name in CHAOS_PLANS:
        result = chaos_recovery(plan_name, seed=3)
        assert result.extras["recovered"] == 1.0, f"{plan_name} seed=3 never recovered"

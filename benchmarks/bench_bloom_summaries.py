"""Experiment E10 — §4's Bloom-filter directory cooperation.

Paper text: "The probability of a false positive depends on the
parameters k ... and m ... These values can be chosen so that the
probability of false positive is minimized."  The experiment sweeps (m, k)
and measures the realized false-positive rate of directory summaries, then
evaluates forwarding quality in a multi-directory population: queries must
never skip a directory that holds a match (no false negatives) and should
contact few irrelevant ones.
"""

from __future__ import annotations

from benchmarks._report import save_report, series_table
from repro.core.summaries import DirectorySummary
from repro.services.generator import ServiceWorkload
from repro.services.profile import Capability

SWEEP = [(64, 2), (128, 4), (256, 4), (512, 4), (1024, 6)]
STORED = 60
PROBES = 300


def synthetic_capability(index: int, namespaces: list[str]) -> Capability:
    return Capability.build(
        f"urn:x:cap:{index}",
        f"C{index}",
        outputs=[f"{ns}#Out{index}" for ns in namespaces],
    )


def test_summary_add(benchmark):
    summary = DirectorySummary()
    capability = synthetic_capability(0, ["http://o.org/1", "http://o.org/2"])
    benchmark(summary.add_capability, capability)


def test_summary_probe(benchmark):
    summary = DirectorySummary()
    for i in range(STORED):
        summary.add_capability(synthetic_capability(i, [f"http://o.org/{i % 10}"]))
    probe = synthetic_capability(999, ["http://o.org/3"])
    assert benchmark(summary.might_hold, probe)


def test_e10_report(benchmark, directory_workload: ServiceWorkload):
    # --- (m, k) sweep on synthetic footprints (shared experiment) -----
    from repro.experiments import e10_bloom_summaries

    sweep = e10_bloom_summaries(stored=STORED, probes=PROBES)
    assert sweep.extras["fp_m1024k6"] < sweep.extras["fp_m64k2"]
    sweep_table = sweep.render()

    # --- forwarding quality over a partitioned population --------------
    directories = 8
    summaries = [DirectorySummary(m=512, k=4) for _ in range(directories)]
    holders: dict[str, set[int]] = {}
    profiles = directory_workload.make_services(80)
    for index, profile in enumerate(profiles):
        home = index % directories
        for capability in profile.provided:
            summaries[home].add_capability(capability)
        holders[profile.uri] = {home}
    contacted_total = 0
    relevant_total = 0
    queries = 40
    for index in range(queries):
        target = profiles[index]
        request = directory_workload.matching_request(target)
        contacted = {
            d for d in range(directories) if summaries[d].might_answer(request)
        }
        assert holders[target.uri] <= contacted, "forwarding skipped the holder"
        contacted_total += len(contacted)
        relevant_total += len(holders[target.uri])
    forwarding = (
        f"\nforwarding: contacted {contacted_total / queries:.1f} of {directories}"
        f" directories per query (>= {relevant_total / queries:.1f} holding a match;"
        " extras are Bloom false positives + genuinely overlapping content)"
    )
    metrics = {name: (value, "rate") for name, value in sweep.extras.items()}
    metrics["contacted_per_query"] = (contacted_total / queries, "directories")
    metrics["relevant_per_query"] = (relevant_total / queries, "directories")
    save_report(
        "e10_bloom_summaries",
        sweep_table + forwarding,
        metrics=metrics,
        config={
            "stored": STORED,
            "probes": PROBES,
            "directories": directories,
            "queries": queries,
            "workload_seed": 42,
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Experiment E11 — §4's deployment behaviour over the simulated MANET.

Not a paper figure but the protocol machinery §4 describes: directory
election coverage, backbone formation, and end-to-end discovery latency in
*simulated* network time (the paper's Figs. 7–10 are directory-side CPU
measurements, reproduced by the other benchmarks; this one characterizes
the distributed path: client → directory → peer directories → client).
"""

from __future__ import annotations

import pytest

from benchmarks._report import save_report, series_table
from repro.network.election import ElectionConfig
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


def build_deployment(directory_workload, table, node_count=36, seed=3):
    config = DeploymentConfig(
        node_count=node_count,
        protocol="sariadne",
        election=FAST_ELECTION,
        seed=seed,
    )
    deployment = Deployment(config, table=table)
    deployment.run_until_directories(minimum=2)
    deployment.sim.run(until=deployment.sim.now + 30.0)
    services = directory_workload.make_services(20)
    for index, profile in enumerate(services):
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(index % node_count, document, service_uri=profile.uri)
    return deployment, services


@pytest.fixture(scope="module")
def scenario(directory_workload, directory_table):
    return build_deployment(directory_workload, directory_table)


def test_query_roundtrip_cpu(benchmark, scenario, directory_workload, directory_table):
    """CPU cost of driving one full simulated query round-trip."""
    deployment, services = scenario
    request = directory_workload.matching_request(services[4])
    document = request_to_xml(
        request,
        annotations=directory_table.annotate(request.capabilities),
        codes_version=directory_table.version,
    )

    def run():
        return deployment.query_from(17, document)

    response = benchmark(run)
    assert response is not None


def test_e11_report(benchmark, scenario, directory_workload, directory_table):
    deployment, services = scenario
    rows = []
    latencies = []
    found = 0
    queries = 12
    for index in range(queries):
        target = services[index]
        request = directory_workload.matching_request(target)
        document = request_to_xml(
            request,
            annotations=directory_table.annotate(request.capabilities),
            codes_version=directory_table.version,
        )
        response = deployment.query_from((index * 7) % 36, document)
        assert response is not None
        latency, results = response
        hit = any(row[0] == target.uri for row in results)
        found += hit
        latencies.append(latency)
        rows.append([index, f"{latency * 1e3:.1f}", "hit" if hit else "miss"])
    stats = deployment.network.stats
    table = series_table(["query", "simulated latency(ms)", "outcome"], rows)
    table += (
        f"\ndirectories elected: {len(deployment.directory_ids())} of 36 nodes"
        f"\ncoverage: {deployment.coverage():.0%}"
        f"\nrecall: {found}/{queries}"
        f"\ntraffic: {stats.broadcasts} broadcasts, {stats.unicasts} unicasts,"
        f" {stats.bytes_sent / 1024:.0f} KiB, {stats.drops_unreachable} drops"
    )
    save_report(
        "e11_network_discovery",
        table,
        metrics={
            "recall": (found / queries, "fraction"),
            "coverage": (deployment.coverage(), "fraction"),
            "mean_latency": (sum(latencies) / len(latencies), "seconds"),
            "directories_elected": (len(deployment.directory_ids()), "nodes"),
            "kib_sent": (stats.bytes_sent / 1024, "KiB"),
        },
        config={"nodes": 36, "queries": queries, "seed": 3},
    )
    assert found == queries, "every advertised service must be discoverable"
    assert deployment.coverage() == 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

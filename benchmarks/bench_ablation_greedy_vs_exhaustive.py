"""Ablation — the paper's greedy root-descent query vs exhaustive search.

The §3.3 query algorithm matches the request against graph roots and
descends toward the minimum semantic distance.  This ablation quantifies
what the heuristic trades away: number of capability matches evaluated
(its whole point) and answer quality (best distance found) against an
exhaustive evaluation of every vertex.
"""

from __future__ import annotations

import pytest

from benchmarks._report import save_report, series_table
from repro.core.capability_graph import QueryMode
from repro.core.directory import SemanticDirectory
from repro.core.matching import CodeMatcher
from repro.services.generator import ServiceWorkload

SIZES = [20, 60, 100]
QUERIES = 30


@pytest.fixture(scope="module")
def directories(directory_workload: ServiceWorkload, directory_table):
    built = {}
    for mode in QueryMode:
        per_size = {}
        for size in SIZES:
            directory = SemanticDirectory(directory_table, query_mode=mode)
            for index in range(size):
                directory.publish(directory_workload.make_service(index))
            per_size[size] = directory
        built[mode] = per_size
    return built


@pytest.mark.parametrize("mode", list(QueryMode), ids=lambda m: m.value)
def test_query_mode(benchmark, directories, directory_workload, mode):
    directory = directories[mode][100]
    request = directory_workload.matching_request(directory_workload.make_service(3))
    hits = benchmark(directory.query, request)
    assert hits


def test_ablation_report(benchmark, directories, directory_workload, directory_table):
    rows = []
    for size in SIZES:
        stats = {}
        for mode in QueryMode:
            directory = directories[mode][size]
            matches_used = 0
            distances = []
            answered = 0
            for index in range(min(QUERIES, size)):
                request = directory_workload.matching_request(
                    directory_workload.make_service(index)
                )
                matcher = CodeMatcher(table=directory_table)
                hits = []
                for capability in request.capabilities:
                    for graph in directory._candidate_graphs(capability):
                        hits.extend(graph.query(capability, matcher, mode))
                matches_used += matcher.stats.capability_matches
                if hits:
                    answered += 1
                    distances.append(min(h.distance for h in hits))
            stats[mode] = (matches_used, answered, distances)
        greedy_matches, greedy_answered, greedy_distances = stats[QueryMode.GREEDY]
        full_matches, full_answered, full_distances = stats[QueryMode.EXHAUSTIVE]
        # Greedy must not lose answers or return worse best-distances here.
        assert greedy_answered == full_answered
        assert greedy_distances == full_distances
        rows.append(
            [
                size,
                greedy_matches,
                full_matches,
                f"{full_matches / max(greedy_matches, 1):.1f}x",
                greedy_answered,
            ]
        )
    table = series_table(
        ["services", "greedy matches", "exhaustive matches", "savings", "answered"],
        rows,
    )
    table += "\ngreedy answers matched exhaustive answers (same best distances) on this workload"
    metrics = {}
    for row in rows:
        metrics[f"greedy_matches_{row[0]}"] = row[1]
        metrics[f"exhaustive_matches_{row[0]}"] = row[2]
    save_report(
        "ablation_greedy_vs_exhaustive",
        table,
        metrics=metrics,
        config={"sizes": [row[0] for row in rows], "workload_seed": 42},
        units="capability matches",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Extension experiment E12 — availability under directory churn.

§2.4's requirement: "service discovery needs to be efficient enough to
ensure service availability despite the network's dynamics."  This
experiment crashes directories at increasing rates (no handoff — state is
lost) while clients advertise with soft-state refresh, and measures query
recall.  Expected shape: availability stays high for crash intervals
comfortably above the refresh interval and degrades as churn approaches
it.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._report import save_report, series_table
from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)
REFRESH = 15.0
SERVICES = 10
QUERY_ROUNDS = 12


def run_scenario(workload, table, crash_interval: float | None, seed: int = 8) -> dict:
    deployment = Deployment(
        DeploymentConfig(
            node_count=25,
            protocol="sariadne",
            election=FAST_ELECTION,
            seed=seed,
            directory_capable_fraction=1.0,
        ),
        table=table,
    )
    deployment.run_until_directories(minimum=1)
    services = workload.make_services(SERVICES)
    for index, profile in enumerate(services):
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.clients[index % 25].advertise(
            document, profile.uri, refresh_interval=REFRESH
        )
    deployment.sim.run(until=deployment.sim.now + 5.0)

    rng = random.Random(seed)
    crashes = 0
    if crash_interval is not None:
        def crash() -> None:
            nonlocal crashes
            directories = deployment.directory_ids()
            if len(directories) > 0:
                victim = rng.choice(directories)
                deployment.crash_directory(victim)
                crashes += 1

        deployment.sim.schedule_every(crash_interval, crash)

    hits = 0
    issued = 0
    for round_index in range(QUERY_ROUNDS):
        deployment.sim.run(until=deployment.sim.now + 10.0)
        target = services[round_index % SERVICES]
        request = workload.matching_request(target)
        document = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from((round_index * 5 + 1) % 25, document)
        issued += 1
        if response is not None and any(row[0] == target.uri for row in response[1]):
            hits += 1
    return {
        "recall": hits / issued,
        "crashes": crashes,
        "directories_left": len(deployment.directory_ids()),
    }


@pytest.fixture(scope="module")
def table(directory_workload):
    return CodeTable(OntologyRegistry(directory_workload.ontologies))


def test_no_churn_baseline(benchmark, directory_workload, table):
    stats = benchmark.pedantic(
        run_scenario, args=(directory_workload, table, None), rounds=1, iterations=1
    )
    assert stats["recall"] == 1.0


def test_churn_report(benchmark, directory_workload, table):
    rows = []
    recalls = {}
    for label, interval in [("none", None), ("60s", 60.0), ("30s", 30.0)]:
        stats = run_scenario(directory_workload, table, interval)
        recalls[label] = stats["recall"]
        rows.append(
            [
                label,
                f"{stats['recall']:.0%}",
                stats["crashes"],
                stats["directories_left"],
            ]
        )
    # Soft-state refresh keeps availability high under moderate churn.
    assert recalls["none"] == 1.0
    assert recalls["60s"] >= 0.8
    table_text = series_table(
        ["crash interval", "recall", "crashes", "directories left"], rows
    )
    table_text += (
        f"\nsoft-state refresh every {REFRESH:.0f}s restores content on surviving/"
        "newly elected directories after each crash"
    )
    save_report(
        "churn_availability",
        table_text,
        metrics={f"recall_{label}": value for label, value in recalls.items()},
        config={"refresh_interval": REFRESH, "seed": 8},
        units="fraction",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Shared benchmark fixtures: the paper's workloads at benchmark scale."""

from __future__ import annotations

import pytest

from repro.core.codes import CodeTable
from repro.ontology.registry import OntologyRegistry
from repro.services.generator import PAPER_FIG2_SHAPE, ServiceWorkload, WorkloadShape


@pytest.fixture(scope="session")
def fig2_workload():
    """§2.4 setting: one 99-class / 39-property ontology, 7-in/3-out caps."""
    return ServiceWorkload(PAPER_FIG2_SHAPE, seed=42)


@pytest.fixture(scope="session")
def directory_workload():
    """§5 setting: 22 ontologies, one provided capability per service."""
    return ServiceWorkload(WorkloadShape(), seed=42)


@pytest.fixture(scope="session")
def directory_registry(directory_workload):
    return OntologyRegistry(directory_workload.ontologies)


@pytest.fixture(scope="session")
def directory_table(directory_registry):
    return CodeTable(directory_registry)

"""Extension benchmark — directory state transfer (the Fig. 7 scenario).

When a directory leaves, its successor must host the cached descriptions
(§5).  Two mechanisms exist: re-publishing the raw documents
(`DirectoryHandoff`) and importing a full state snapshot (codes included,
no reasoning on the receiving side).  This benchmark measures snapshot
size and export/import time against directory size.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._report import ms, save_report, series_table
from repro.core.directory import SemanticDirectory

SIZES = [20, 60, 100]


@pytest.fixture(scope="module")
def populated(directory_workload, directory_table):
    directories = {}
    for size in SIZES:
        directory = SemanticDirectory(directory_table)
        for index in range(size):
            directory.publish(directory_workload.make_service(index))
        directories[size] = directory
    return directories


def test_export_state_100(benchmark, populated):
    snapshot = benchmark(populated[100].export_state)
    assert "DirectoryState" in snapshot


def test_import_state_100(benchmark, populated):
    snapshot = populated[100].export_state()
    restored = benchmark(SemanticDirectory.from_state, snapshot)
    assert len(restored) == 100


def test_handoff_report(benchmark, populated, directory_workload):
    rows = []
    metrics = {}
    for size in SIZES:
        directory = populated[size]
        start = time.perf_counter()
        snapshot = directory.export_state()
        export_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restored = SemanticDirectory.from_state(snapshot)
        import_seconds = time.perf_counter() - start
        if len(restored) != size:
            raise AssertionError(f"snapshot lost services at size {size}")
        # The successor must answer identically.
        request = directory_workload.matching_request(directory_workload.make_service(0))
        original = [(m.service_uri, m.distance) for m in directory.query(request)]
        recovered = [(m.service_uri, m.distance) for m in restored.query(request)]
        assert original == recovered
        rows.append(
            [
                size,
                f"{len(snapshot) / 1024:.0f}",
                ms(export_seconds),
                ms(import_seconds),
            ]
        )
        metrics[f"snapshot_kib_{size}"] = (len(snapshot) / 1024, "KiB")
        metrics[f"export_{size}"] = (export_seconds, "seconds")
        metrics[f"import_{size}"] = (import_seconds, "seconds")
    table = series_table(
        ["services", "snapshot KiB", "export(ms)", "import(ms)"], rows
    )
    table += "\nthe successor rebuilds graphs from the snapshot without running a reasoner"
    save_report(
        "handoff_state_transfer", table, metrics=metrics, config={"sizes": SIZES, "workload_seed": 42}
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Backbone fast path: parse-once forwarding + route caching, before/after.

Fig. 10-style deployment scaled to the network layer: 50 nodes on a
connected grid, 4 of them elected S-Ariadne directories, advertisements
spread across all four so most queries must be forwarded over the §4
backbone.  The same query workload runs twice:

* **fast** — parse-once request cache, ``EncodedRequest`` wire forms on
  forwarded queries, and the network route cache (the defaults);
* **legacy** — ``use_fastpath = False`` on every directory and
  ``use_route_cache = False`` on the fabric, i.e. the historical
  parse-per-call / BFS-per-send behaviour.

The headline assertion is deterministic, not wall-clock: per-query
forwarding overhead = XML request parses + shortest-path computations
(both counted, not timed) must drop by at least 3x, while every query
returns identical result rows and every node pair keeps identical hop
counts.  Wall-clock queries/sec and simulated per-hop latency are
reported alongside.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks._report import save_report, series_table
from repro.network.messages import PublishService
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, grid_positions
from repro.protocols.sariadne import SAriadneClientAgent, SAriadneDirectoryAgent
from repro.services.xml_codec import CODEC_STATS, profile_to_xml, request_to_xml

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Traced mode: repeat the fast workload with observability enabled and
#: write a JSONL trace with the per-hop breakdown of every forwarded query.
TRACE = bool(os.environ.get("REPRO_BENCH_TRACE"))
NODE_COUNT = 50
DIRECTORY_COUNT = 4
SERVICES = 8 if SMOKE else 20
DISTINCT_QUERIES = 4 if SMOKE else 10
QUERY_REPEATS = 2  # every distinct request issued twice: cold then warm
SEEDS = [0] if SMOKE else [0, 1, 2]
BOUNDS = Bounds(600.0, 600.0)
RADIO_RANGE = 130.0


@pytest.fixture(scope="module")
def documents(directory_workload, directory_table):
    """Annotated advertisement + request documents (built once)."""
    table = directory_table
    adverts = []
    for index in range(SERVICES):
        profile = directory_workload.make_service(index)
        adverts.append(
            (
                profile.uri,
                profile_to_xml(
                    profile,
                    annotations=table.annotate(profile.provided),
                    codes_version=table.version,
                ),
            )
        )
    requests = []
    for index in range(DISTINCT_QUERIES):
        profile = directory_workload.make_service(index)
        request = directory_workload.matching_request(profile)
        requests.append(
            (
                profile.uri,
                request_to_xml(
                    request,
                    annotations=table.annotate(request.capabilities),
                    codes_version=table.version,
                ),
            )
        )
    return adverts, requests


def build_backbone(table, seed: int, fastpath: bool):
    """50-node grid, 4 directories, clients homed on the nearest one."""
    rng = random.Random(seed)
    sim = Simulator()
    network = Network(sim, bounds=BOUNDS, radio_range=RADIO_RANGE, seed=seed)
    network.use_route_cache = fastpath
    positions = grid_positions(NODE_COUNT, BOUNDS)
    for node_id in range(NODE_COUNT):
        network.add_node(node_id, positions[node_id])
    assert network.is_connected()
    directory_ids = sorted(rng.sample(range(NODE_COUNT), DIRECTORY_COUNT))
    directories = {}
    for node_id in directory_ids:
        agent = network.nodes[node_id].add_agent(
            SAriadneDirectoryAgent(table, forward_window=0.5)
        )
        agent.use_fastpath = fastpath
        directories[node_id] = agent

    def nearest_directory(node_id: int) -> int:
        position = network.nodes[node_id].position
        return min(
            directory_ids,
            key=lambda d: (position.distance_to(network.nodes[d].position), d),
        )

    clients = {}
    for node_id in range(NODE_COUNT):
        if node_id in directories:
            continue
        clients[node_id] = network.nodes[node_id].add_agent(
            SAriadneClientAgent(lambda nid=node_id: nearest_directory(nid))
        )
    network.start()
    for agent in directories.values():
        agent.join_backbone()
    sim.run(until=10.0)
    return sim, network, directories, clients, directory_ids


def run_workload(table, documents, seed: int, fastpath: bool, obs=None):
    """Publish, settle, query; returns (per-query rows, counters).

    When ``obs`` is given it is installed over the deployment before the
    workload runs, so the trace captures every forwarding hop.
    """
    adverts, requests = documents
    sim, network, directories, clients, directory_ids = build_backbone(
        table, seed, fastpath
    )
    if obs is not None:
        from repro.obs import install

        install(obs, network)
    rng = random.Random(seed + 1000)
    client_ids = sorted(clients)
    for index, (_uri, document) in enumerate(adverts):
        home = directory_ids[index % DIRECTORY_COUNT]
        publisher = rng.choice(client_ids)
        network.nodes[publisher].unicast(home, PublishService(document))
    sim.run(until=sim.now + 10.0)  # summaries settle

    parses_before = CODEC_STATS.snapshot()
    routes_before = network.routes.stats.bfs_runs + network.bfs_fallback_runs
    results = []
    latencies = []
    start = time.perf_counter()
    for repeat in range(QUERY_REPEATS):
        for index, (uri, document) in enumerate(requests):
            client_id = client_ids[(seed + 7 * index + repeat) % len(client_ids)]
            client = clients[client_id]
            query_id = client.query(document)
            sim.run(until=sim.now + 5.0)
            latency, rows = client.responses[query_id]
            results.append((client_id, uri, rows))
            latencies.append(latency)
    wall_seconds = time.perf_counter() - start
    parses_after = CODEC_STATS.snapshot()
    routes_after = network.routes.stats.bfs_runs + network.bfs_fallback_runs
    # Per-hop latency is derived after the counter window closes so these
    # harness-side route lookups don't pollute the overhead metric.
    per_hop = [
        latency / max(network.hop_count(client_id, clients[client_id].directory_id()) or 1, 1)
        for (client_id, _uri, _rows), latency in zip(results, latencies)
    ]

    query_count = QUERY_REPEATS * len(requests)
    counters = {
        "request_parses": parses_after[1] - parses_before[1],
        "route_computations": routes_after - routes_before,
        "queries": query_count,
        "wall_seconds": wall_seconds,
        "mean_latency": sum(latencies) / len(latencies),
        "mean_per_hop_latency": sum(per_hop) / len(per_hop),
        "recall": sum(
            1 for _cid, uri, rows in results if any(r[0] == uri for r in rows)
        )
        / query_count,
    }
    # Hop-count parity: the cached answers must equal a fresh BFS for
    # every (client, directory) pair on this topology.
    for client_id in client_ids:
        for directory_id in directory_ids:
            reference = network._bfs_shortest_path(client_id, directory_id)
            expected = None if reference is None else len(reference) - 1
            assert network.hop_count(client_id, directory_id) == expected
    return results, counters


def overhead_per_query(counters: dict) -> float:
    return (counters["request_parses"] + counters["route_computations"]) / counters[
        "queries"
    ]


def test_backbone_fastpath_report(benchmark, directory_table, documents):
    rows = []
    metrics = {}
    ratios = []
    for seed in SEEDS:
        fast_results, fast = run_workload(directory_table, documents, seed, True)
        legacy_results, legacy = run_workload(directory_table, documents, seed, False)
        # Identical discovery results, query for query.
        assert fast_results == legacy_results, f"seed {seed}: results diverged"
        assert fast["recall"] == legacy["recall"] == 1.0
        ratio = overhead_per_query(legacy) / max(overhead_per_query(fast), 1e-9)
        ratios.append(ratio)
        rows.append(
            [
                seed,
                f"{overhead_per_query(legacy):.1f}",
                f"{overhead_per_query(fast):.1f}",
                f"{ratio:.1f}x",
                f"{legacy['queries'] / legacy['wall_seconds']:.0f}",
                f"{fast['queries'] / fast['wall_seconds']:.0f}",
                f"{fast['mean_per_hop_latency'] * 1e3:.2f}",
            ]
        )
        metrics[f"overhead_legacy_{seed}"] = (
            overhead_per_query(legacy),
            "parses+route computations per query",
        )
        metrics[f"overhead_fast_{seed}"] = (
            overhead_per_query(fast),
            "parses+route computations per query",
        )
        metrics[f"overhead_reduction_{seed}"] = (ratio, "ratio")
        metrics[f"queries_per_sec_fast_{seed}"] = (
            fast["queries"] / fast["wall_seconds"],
            "queries/s",
        )
        metrics[f"queries_per_sec_legacy_{seed}"] = (
            legacy["queries"] / legacy["wall_seconds"],
            "queries/s",
        )
        metrics[f"per_hop_latency_fast_{seed}"] = (
            fast["mean_per_hop_latency"],
            "seconds",
        )
        metrics[f"cold_request_parses_{seed}"] = (fast["request_parses"], "parses")
        metrics[f"legacy_request_parses_{seed}"] = (legacy["request_parses"], "parses")
    # The tentpole claim: >= 3x less per-query forwarding overhead on
    # every seed, with identical discovery results (asserted above).
    for seed, ratio in zip(SEEDS, ratios):
        assert ratio >= 3.0, f"seed {seed}: only {ratio:.1f}x"
    table = series_table(
        [
            "seed",
            "legacy ovh/query",
            "fast ovh/query",
            "reduction",
            "legacy q/s",
            "fast q/s",
            "per-hop ms",
        ],
        rows,
    )
    table += (
        "\noverhead = XML request parses + shortest-path computations (deterministic"
        "\ncounters, not wall-clock); identical result rows and hop counts on every seed"
        f"\ncold vs warm: the fast path parses each distinct request once"
        f" ({DISTINCT_QUERIES} parses for {QUERY_REPEATS * DISTINCT_QUERIES} queries);"
        " the legacy path re-parses per probe, per peer, per repeat"
    )
    save_report(
        "backbone_fastpath",
        table,
        metrics=metrics,
        config={
            "nodes": NODE_COUNT,
            "directories": DIRECTORY_COUNT,
            "services": SERVICES,
            "distinct_queries": DISTINCT_QUERIES,
            "query_repeats": QUERY_REPEATS,
            "seeds": SEEDS,
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.skipif(not TRACE, reason="set REPRO_BENCH_TRACE=1 for the traced mode")
def test_backbone_fastpath_traced(directory_table, documents):
    """Traced mode: one fast-path workload with observability enabled.

    Writes ``benchmarks/results/trace_backbone_fastpath.jsonl`` and
    asserts the rendered report shows per-hop spans for every forwarded
    query (hop.forward at the origin, hop.remote at each answering peer).
    """
    import pathlib

    from repro.obs import JsonlSink, Observability, RingBufferSink
    from repro.obs.report import load_trace, render_trace_report

    outdir = pathlib.Path(__file__).parent / "results"
    outdir.mkdir(exist_ok=True)
    trace_path = outdir / "trace_backbone_fastpath.jsonl"
    ring = RingBufferSink()
    with JsonlSink(trace_path) as jsonl:
        obs = Observability(sinks=[ring, jsonl])
        _results, counters = run_workload(
            directory_table, documents, SEEDS[0], True, obs=obs
        )
        obs.close()
    assert counters["recall"] == 1.0
    spans, metrics = load_trace(trace_path)
    report = render_trace_report(spans, metrics)
    def names(record):
        yield record["name"]
        for child in record.get("children", []):
            yield from names(child)

    handled = [s for s in spans if s["name"] == "query.handle"]
    assert handled
    forwarded = [s for s in handled if "hop.forward" in set(names(s))]
    assert forwarded, "no forwarded queries captured in the trace"
    assert "hop.forward" in report and "hop.remote" in report
    assert "net.messages" in report
    print(report)


def test_route_cache_amortizes_bfs(directory_table, documents):
    """Cold vs warm route cache: steady-state queries run no new BFS."""
    sim, network, _directories, clients, directory_ids = build_backbone(
        directory_table, seed=0, fastpath=True
    )
    client_ids = sorted(clients)
    for client_id in client_ids:
        for directory_id in directory_ids:
            network.hop_count(client_id, directory_id)
    warm_runs = network.routes.stats.bfs_runs
    for client_id in client_ids:
        for directory_id in directory_ids:
            network.hop_count(client_id, directory_id)
    assert network.routes.stats.bfs_runs == warm_runs  # fully amortized
    assert warm_runs <= len(client_ids) + len(directory_ids)

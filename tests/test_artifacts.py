"""The reproducibility bundle stays honest (``tools/make_artifacts.py``).

Three cheap invariants, none of which run a benchmark:

* every ``benchmarks/bench_*.py`` module is declared in the
  ``BENCH_REPORTS`` table, so new experiments cannot stay out of the
  bundle;
* the stable artifact hash really is stable: values, git state and
  machine-dependent config must not move it, while schema changes
  (metric renamed, reseeded) must;
* the committed manifest's ``inputs`` section matches the benchmark
  sources in the working tree — editing a benchmark without
  regenerating the manifest fails here first, before CI reruns the
  whole bundle.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import docs_lint  # noqa: E402
import make_artifacts  # noqa: E402


def _payload(**overrides):
    base = {
        "benchmark": "demo",
        "config": {"population": 100, "backend": "numpy"},
        "metrics": [
            {"name": "p50_ms", "value": 1.23, "units": "ms"},
            {"name": "recall", "value": 1.0, "units": "ratio"},
        ],
        "manifest": {"git_sha": "abc", "seeds": {"seed": 7}},
    }
    base.update(overrides)
    return base


class TestStableHash:
    def test_values_and_provenance_do_not_move_the_hash(self):
        a = make_artifacts.stable_artifact_hash(_payload())
        b = make_artifacts.stable_artifact_hash(
            _payload(
                config={"population": 400, "backend": "stdlib"},
                metrics=[
                    {"name": "recall", "value": 0.5, "units": "ratio"},
                    {"name": "p50_ms", "value": 99.0, "units": "ms"},
                ],
                manifest={"git_sha": "fff", "dirty": True, "seeds": {"seed": 7}},
            )
        )
        assert a == b  # order, values, config, git state all excluded

    def test_schema_changes_move_the_hash(self):
        base = make_artifacts.stable_artifact_hash(_payload())
        renamed = _payload()
        renamed["metrics"][0]["name"] = "p99_ms"
        reseeded = _payload(manifest={"seeds": {"seed": 8}})
        assert make_artifacts.stable_artifact_hash(renamed) != base
        assert make_artifacts.stable_artifact_hash(reseeded) != base


class TestBundleCoverage:
    def test_every_bench_module_is_declared(self):
        modules = {
            path.stem for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
        }
        declared = set(make_artifacts.BENCH_REPORTS)
        assert modules == declared, (
            "benchmarks/ and make_artifacts.BENCH_REPORTS disagree: "
            f"undeclared={sorted(modules - declared)} "
            f"stale={sorted(declared - modules)}"
        )

    def test_committed_manifest_inputs_match_working_tree(self):
        committed = json.loads(
            make_artifacts.BASELINE_MANIFEST.read_text(encoding="utf-8")
        )
        assert committed["schema"] == make_artifacts.MANIFEST_SCHEMA
        assert committed["mode"] == "smoke"
        assert committed["inputs"] == make_artifacts.input_hashes(), (
            "benchmark sources changed without regenerating the manifest — "
            "run: python tools/make_artifacts.py --smoke --write-baseline"
        )
        assert set(committed["artifacts"]) == {
            report
            for reports in make_artifacts.BENCH_REPORTS.values()
            for report in reports
        }


class TestManifestDiff:
    def test_clean_diff(self):
        manifest = {"mode": "smoke", "inputs": {"a": "1"}, "artifacts": {"x": {}}}
        assert make_artifacts.diff_manifests(manifest, json.loads(json.dumps(manifest))) == []

    def test_drift_kinds_reported(self):
        fresh = {"mode": "smoke", "inputs": {"a": "1", "b": "2"}, "artifacts": {}}
        committed = {"mode": "full", "inputs": {"a": "9", "c": "3"}, "artifacts": {}}
        drift = "\n".join(make_artifacts.diff_manifests(fresh, committed))
        assert "mode" in drift
        assert "a changed" in drift
        assert "b is new" in drift
        assert "c vanished" in drift


class TestDocsLint:
    def test_repo_markdown_is_clean(self):
        assert docs_lint.lint(REPO_ROOT) == []

    def test_dangling_link_and_ghost_metric_detected(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text(
            "| metric | labels |\n|---|---|\n| `match.stage.real` | — |\n"
        )
        (tmp_path / "BAD.md").write_text(
            "See [gone](docs/NOPE.md) and [ok](docs/OBSERVABILITY.md).\n"
            "Ghost `match.stage.fake` vs real `match.stage.real`.\n"
        )
        findings = "\n".join(docs_lint.lint(tmp_path))
        assert "dangling link docs/NOPE.md" in findings
        assert "match.stage.fake" in findings
        assert "match.stage.real" not in findings

    def test_anchor_check(self, tmp_path):
        (tmp_path / "A.md").write_text("# Title\n\n## 2. The wire format\n")
        (tmp_path / "B.md").write_text(
            "[good](A.md#2-the-wire-format) [bad](A.md#missing-section)\n"
        )
        findings = "\n".join(docs_lint.lint(tmp_path))
        assert "no such anchor #missing-section" in findings
        assert "2-the-wire-format" not in findings

"""Tests for the experiment library (small-scale runs for speed).

The full-scale shape assertions live in ``benchmarks/``; here we verify
the machinery: results are well formed, series have the requested sizes,
rendering works, and the registry dispatches.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    e7_encoding_scalability,
    fig7_graph_creation,
    fig8_publish,
    fig9_match_request,
    run_experiment,
)


class TestResultRendering:
    def test_render_contains_all_cells(self):
        result = ExperimentResult(
            name="x", header=["a", "b"], rows=[[1, "y"], [22, "zz"]], notes=["note!"]
        )
        text = result.render()
        assert "a" in text and "b" in text
        assert "22" in text and "zz" in text
        assert text.endswith("note!")

    def test_render_empty_rows(self):
        result = ExperimentResult(name="x", header=["only", "header"])
        assert "only" in result.render()


class TestRegistry:
    def test_all_registered_names(self):
        assert set(EXPERIMENTS) == {
            "fig2",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "e7",
            "e8",
            "e9",
            "e10",
            "shard_failover",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")


class TestSmallScaleRuns:
    def test_fig7_small(self):
        result = fig7_graph_creation(sizes=[1, 5])
        assert len(result.rows) == 2
        assert result.extras["parse_5"] > 0

    def test_fig8_small(self):
        result = fig8_publish(sizes=[1, 5], repeats=2)
        assert len(result.rows) == 2
        assert result.extras["insert_5"] >= 0

    def test_fig9_small(self):
        result = fig9_match_request(sizes=[1, 5], repeats=2)
        assert len(result.rows) == 2
        assert "overhead_at_max" in result.extras

    def test_e7(self):
        result = e7_encoding_scalability(concepts=40)
        assert result.extras["first_p2k5"] > 100
        assert result.extras["exact_seconds"] > 0

    def test_e8_small(self):
        from repro.experiments import e8_gist_directory

        result = e8_gist_directory(sizes=[50, 200])
        assert result.extras["search_200"] < result.extras["build_200"]

    def test_e9_small(self):
        from repro.experiments import e9_srinivasan_registry

        result = e9_srinivasan_registry(services=20)
        assert result.extras["publish_ratio"] > 1.0

    def test_e10(self):
        from repro.experiments import e10_bloom_summaries

        result = e10_bloom_summaries(stored=30, probes=100)
        assert result.extras["fp_m1024k6"] <= result.extras["fp_m64k2"]


class TestFastVariants:
    def test_fig2_single_repeat(self):
        from repro.experiments import fig2_reasoner_cost

        result = fig2_reasoner_cost(repeats=1)
        assert result.extras["semantic_syntactic_ratio"] > 1.0
        assert len(result.rows) == 3

    def test_fig10_small(self):
        from repro.experiments import fig10_ariadne_vs_sariadne

        result = fig10_ariadne_vs_sariadne(sizes=[1, 5], repeats=2)
        assert len(result.rows) == 2
        assert result.extras["ariadne_5"] > 0

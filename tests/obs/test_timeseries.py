"""Tests for the windowed time-series recorder."""

from __future__ import annotations

import json

import pytest

from repro.network.simulator import Simulator
from repro.obs import MetricsRegistry, Observability, RingBufferSink, TimeSeriesRecorder


class TestDeltas:
    def test_counter_windows_carry_deltas_not_totals(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.counter("net.messages", node=0).inc(3)
        first = recorder.snapshot(1.0)
        registry.counter("net.messages", node=0).inc(2)
        second = recorder.snapshot(2.0)
        (d1,) = first["deltas"]
        (d2,) = second["deltas"]
        assert (d1["delta"], d1["value"]) == (3, 3)
        assert (d2["delta"], d2["value"]) == (2, 5)
        assert (first["t_start"], first["t_end"]) == (0.0, 1.0)
        assert (second["t_start"], second["t_end"]) == (1.0, 2.0)

    def test_idle_series_are_omitted(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.counter("a").inc()
        registry.counter("b").inc()
        recorder.snapshot(1.0)
        registry.counter("a").inc()
        window = recorder.snapshot(2.0)
        assert [delta["name"] for delta in window["deltas"]] == ["a"]

    def test_histogram_deltas_use_window_mean(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.histogram("latency").observe(10.0)
        recorder.snapshot(1.0)
        registry.histogram("latency").observe(1.0)
        registry.histogram("latency").observe(3.0)
        window = recorder.snapshot(2.0)
        (delta,) = window["deltas"]
        assert delta["delta_count"] == 2
        assert delta["delta_total"] == 4.0
        assert delta["mean"] == 2.0  # the window's mean, not the lifetime one
        assert delta["count"] == 3

    def test_windows_are_json_serializable(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.counter("a", node=1).inc()
        registry.histogram("h").observe(1.5)
        json.dumps(recorder.snapshot(1.0))


class TestOutOfOrder:
    def test_out_of_order_snapshot_is_refused(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.counter("a").inc()
        assert recorder.snapshot(2.0) is not None
        registry.counter("a").inc()
        assert recorder.snapshot(1.0) is None  # behind the last window
        assert recorder.snapshot(2.0) is None  # not strictly after either
        assert recorder.skipped == 2
        assert len(recorder.windows) == 1

    def test_deltas_stay_correct_after_a_refused_snapshot(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        registry.counter("a").inc(5)
        recorder.snapshot(2.0)
        registry.counter("a").inc(1)
        recorder.snapshot(1.0)  # refused: must not touch the baseline
        registry.counter("a").inc(1)
        window = recorder.snapshot(3.0)
        (delta,) = window["deltas"]
        # Both post-refusal increments fall into the next valid window.
        assert delta["delta"] == 2 and delta["value"] == 7

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), interval=0.0)


class TestSimulatorBinding:
    def test_attach_snapshots_periodically_on_sim_clock(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        recorder.attach(sim)
        sim.schedule_every(0.4, lambda: registry.counter("ticks").inc())
        sim.run(until=3.5)
        assert [window["t_end"] for window in recorder.windows] == [1.0, 2.0, 3.0]

    def test_recorder_tick_does_not_keep_the_simulation_alive(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval=1.0)
        recorder.attach(sim)
        sim.schedule(2.5, lambda: None)
        sim.run()  # unbounded: must drain, not loop on the daemon tick
        assert sim.now == 2.5

    def test_finalize_closes_the_trailing_partial_window(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        recorder.attach(sim)
        sim.schedule(2.5, lambda: registry.counter("late").inc())
        sim.run(until=2.5)
        final = recorder.finalize()
        assert final["t_end"] == 2.5
        assert [delta["name"] for delta in final["deltas"]] == ["late"]
        # Idempotent: nothing more to close.
        assert recorder.finalize() is None
        assert len(recorder.windows) == 3

    def test_double_attach_rejected(self):
        recorder = TimeSeriesRecorder(MetricsRegistry())
        recorder.attach(Simulator())
        with pytest.raises(RuntimeError):
            recorder.attach(Simulator())


class TestFacadeIntegration:
    def test_start_timeseries_emits_windows_to_sinks(self):
        sim = Simulator()
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.start_timeseries(sim, interval=1.0)
        sim.schedule(0.5, lambda: obs.counter("net.messages").inc())
        sim.schedule(1.5, lambda: obs.counter("net.messages").inc())
        sim.run(until=2.0)
        assert [window["window"] for window in sink.timeseries] == [0, 1]
        assert all(len(window["deltas"]) == 1 for window in sink.timeseries)

    def test_second_start_rejected_and_close_finalizes(self):
        sim = Simulator()
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.start_timeseries(sim, interval=1.0)
        with pytest.raises(RuntimeError):
            obs.start_timeseries(sim)
        sim.schedule(0.5, lambda: obs.counter("a").inc())
        sim.run(until=0.6)
        obs.close()  # finalizes the partial window before flushing
        assert sink.timeseries[-1]["t_end"] == 0.6

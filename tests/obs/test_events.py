"""Tests for structured lifecycle events: the log, sinks, and the stack's
emission sites (elections, handoffs, churn, summary and cache flushes)."""

from __future__ import annotations

import json

from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position
from repro.obs import EventLog, JsonlSink, NULL_OBS, Observability, RingBufferSink, install
from repro.obs.report import load_run


class TestEventLog:
    def test_seq_is_monotonic_and_log_wide(self):
        log = EventLog()
        first = log.record("election.promoted", node=1)
        second = log.record("churn.join", node=2)
        assert (first.seq, second.seq) == (1, 2)
        assert log.emitted == 2

    def test_record_carries_clock_node_cause_and_attrs(self):
        event = EventLog().record(
            "handoff.start", sim_time=3.5, node=1, cause="resignation", successor=4
        )
        assert event.sim_time == 3.5
        assert event.node == 1
        assert event.cause == "resignation"
        assert event.attrs == {"successor": 4}

    def test_to_dict_round_trips_through_json(self):
        event = EventLog().record("summary.refresh", sim_time=1.0, node=0, peers=2)
        record = json.loads(json.dumps(event.to_dict()))
        assert record["kind"] == "summary.refresh"
        assert record["attrs"] == {"peers": 2}

    def test_signature_is_deterministic(self):
        one = EventLog().record("churn.join", sim_time=2.0, node=5, cause="late_join")
        two = EventLog().record("churn.join", sim_time=2.0, node=5, cause="late_join")
        assert one.signature() == two.signature()


class TestFacade:
    def test_lifecycle_fans_out_to_sinks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ring = RingBufferSink()
        with JsonlSink(path) as jsonl:
            obs = Observability(sinks=[ring, jsonl])
            obs.lifecycle("election.promoted", sim_time=1.0, node=3, cause="self_elected")
            obs.close()
        assert [event.kind for event in ring.events] == ["election.promoted"]
        run = load_run(path)
        assert run["events"][0]["node"] == 3

    def test_scoped_views_share_one_event_log(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.lifecycle("churn.join", node=1)
        obs.scoped(node=2).lifecycle("churn.leave", node=2)
        assert [event.seq for event in sink.events] == [1, 2]

    def test_null_observability_lifecycle_is_free(self):
        assert NULL_OBS.lifecycle("anything", node=1, cause="x") is None
        assert NULL_OBS.events.emitted == 0


def _mesh_network(node_count: int = 2):
    sim = Simulator()
    network = Network(sim, bounds=Bounds(100, 100), radio_range=500.0, seed=0)
    for nid in range(node_count):
        network.add_node(nid, Position(10.0 * nid, 10.0))
    return sim, network


class TestStackEmission:
    def test_route_cache_flush_emits_cache_invalidate(self):
        sim, network = _mesh_network()
        network.start()
        sink = RingBufferSink()
        install(Observability(sinks=[sink]), network)
        network.hop_count(0, 1)  # populate the route cache
        network.add_node(2, Position(50.0, 50.0))  # topology change flushes it
        kinds = [event.kind for event in sink.events]
        assert "cache.invalidate" in kinds
        invalidate = next(e for e in sink.events if e.kind == "cache.invalidate")
        assert invalidate.attrs["cache"] == "route"
        assert invalidate.cause == "topology_changed"

    def test_late_join_emits_churn_join(self):
        _sim, network = _mesh_network()
        network.start()
        sink = RingBufferSink()
        install(Observability(sinks=[sink]), network)
        network.add_node(7, Position(30.0, 30.0))
        join = next(e for e in sink.events if e.kind == "churn.join")
        assert join.node == 7

    def test_request_cache_flush_emits_cache_invalidate(self):
        from repro.protocols.base import DirectoryAgentBase

        class _ToyDirectory(DirectoryAgentBase):
            def __init__(self):
                super().__init__()
                self._version = 0

            def request_cache_version(self):
                return self._version

            def parse_request(self, document):
                return document.upper()

            def local_query(self, document):
                return []

            def local_query_parsed(self, document, parsed):
                return []

        sim, network = _mesh_network()
        sink = RingBufferSink()
        install(Observability(sinks=[sink]), network)
        agent = network.nodes[0].add_agent(_ToyDirectory())
        network.start()
        agent._parsed_request("<doc/>")
        agent._version = 1  # §3.2 re-encode: next read flushes the cache
        agent._parsed_request("<doc/>")
        flush = next(e for e in sink.events if e.kind == "cache.invalidate")
        assert flush.attrs["cache"] == "request"
        assert flush.cause == "codes_reencoded"
        assert flush.attrs["dropped"] == 1

"""Tests for exporters (OpenMetrics/CSV), run manifests, diff and the
regression gate."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry
from repro.obs.export import (
    check_regressions,
    diff_runs,
    load_bench_dir,
    metrics_to_csv,
    run_manifest,
    timeseries_to_csv,
    to_openmetrics,
)


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("net.messages", node=0).inc(4)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("query.latency", node=0).observe(value)
    return registry.snapshot()


class TestOpenMetrics:
    def test_counters_and_histograms_render(self):
        text = to_openmetrics(_snapshot())
        assert "# TYPE net_messages counter" in text
        assert 'net_messages_total{node="0"} 4' in text
        assert "# TYPE query_latency histogram" in text
        assert 'query_latency_bucket{le="+Inf",node="0"} 4' in text
        assert 'query_latency_count{node="0"} 4' in text
        assert 'query_latency_sum{node="0"} 10.0' in text
        assert text.endswith("# EOF\n")

    def test_buckets_are_cumulative_and_end_at_inf(self):
        text = to_openmetrics(_snapshot())
        bucket_lines = [
            line for line in text.splitlines() if line.startswith("query_latency_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 4  # +Inf covers every observation
        assert 'le="+Inf"' in bucket_lines[-1]
        # 1.0s falls in the le=1.0 bucket, the rest above it.
        assert 'query_latency_bucket{le="1.0",node="0"} 1' in text

    def test_pre_bucket_records_still_render(self):
        """Histogram records from old recordings (no ``buckets`` key)."""
        legacy = [
            {
                "name": "query.latency",
                "labels": {},
                "type": "histogram",
                "count": 3,
                "total": 0.5,
            }
        ]
        text = to_openmetrics(legacy)
        assert 'query_latency_bucket{le="+Inf"} 3' in text
        assert "query_latency_count 3" in text

    def test_empty_snapshot_is_just_eof(self):
        assert to_openmetrics([]) == "# EOF\n"


class TestCsv:
    def test_metrics_csv_one_row_per_series(self):
        lines = metrics_to_csv(_snapshot()).splitlines()
        assert lines[0].startswith("name,labels,type,value")
        assert len(lines) == 3  # header + counter + histogram
        assert lines[1].startswith('net.messages,"{""node"": 0}",counter,4')

    def test_timeseries_csv_flattens_windows(self):
        windows = [
            {
                "window": 0,
                "t_start": 0.0,
                "t_end": 1.0,
                "deltas": [
                    {"name": "a", "labels": {}, "type": "counter", "delta": 2, "value": 2},
                    {
                        "name": "h",
                        "labels": {"node": 1},
                        "type": "histogram",
                        "delta_count": 1,
                        "delta_total": 0.5,
                        "mean": 0.5,
                        "count": 1,
                    },
                ],
            }
        ]
        lines = timeseries_to_csv(windows).splitlines()
        assert len(lines) == 3
        assert lines[1].split(",")[:3] == ["0", "0.0", "1.0"]


class TestManifest:
    def test_manifest_carries_provenance_and_config(self):
        manifest = run_manifest(config={"seed": 7})
        assert manifest["config"] == {"seed": 7}
        assert manifest["python"]
        assert manifest["platform"]
        # The repo is a git checkout, so the SHA resolves here.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40
        json.dumps(manifest)


def _write_bench(directory, name, metrics):
    payload = {
        "benchmark": name,
        "config": {},
        "metrics": [{"name": k, "value": v, "units": "seconds"} for k, v in metrics.items()],
    }
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestDiff:
    def test_diff_flags_changes_beyond_threshold(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        _write_bench(base, "fig9", {"match": 1.0, "stable": 1.0})
        _write_bench(cand, "fig9", {"match": 1.5, "stable": 1.01})
        rows = diff_runs(load_bench_dir(base), load_bench_dir(cand), threshold=0.1)
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["match"]["flag"] is True
        assert by_metric["match"]["change"] == 0.5
        assert by_metric["stable"]["flag"] is False

    def test_missing_metric_is_a_row_without_change(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        _write_bench(base, "fig9", {"old": 1.0})
        _write_bench(cand, "fig9", {"new": 2.0})
        rows = diff_runs(load_bench_dir(base), load_bench_dir(cand))
        assert {row["metric"]: row["change"] for row in rows} == {"old": None, "new": None}


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        findings = check_regressions(
            {"fig9": {"match": 1.0}},
            {"fig9": {"match": 1.5}},
            {"default": {"tolerance": 1.0}},
        )
        assert [f["status"] for f in findings] == ["ok"]

    def test_beyond_tolerance_regresses(self):
        findings = check_regressions(
            {"fig9": {"match": 1.0}},
            {"fig9": {"match": 2.5}},
            {"default": {"tolerance": 1.0}},
        )
        (finding,) = findings
        assert finding["status"] == "regressed"
        assert finding["limit"] == 2.0

    def test_metric_override_beats_benchmark_and_default(self):
        config = {
            "default": {"tolerance": 0.1},
            "benchmarks": {
                "fig9": {"tolerance": 0.5, "metrics": {"noisy": {"tolerance": 4.0}}}
            },
        }
        findings = check_regressions(
            {"fig9": {"noisy": 1.0, "steady": 1.0}},
            {"fig9": {"noisy": 4.0, "steady": 4.0}},
            config,
        )
        by_metric = {f["metric"]: f["status"] for f in findings}
        assert by_metric == {"noisy": "ok", "steady": "regressed"}

    def test_higher_is_better_direction(self):
        config = {"default": {"tolerance": 1.0, "direction": "higher"}}
        findings = check_regressions(
            {"bench": {"throughput": 100.0}},
            {"bench": {"throughput": 20.0}},
            config,
        )
        assert findings[0]["status"] == "regressed"
        ok = check_regressions(
            {"bench": {"throughput": 100.0}},
            {"bench": {"throughput": 60.0}},
            config,
        )
        assert ok[0]["status"] == "ok"

    def test_absent_benchmarks_are_skipped_not_failed(self):
        findings = check_regressions(
            {"full_only": {"metric": 1.0}, "both": {"metric": 1.0}},
            {"both": {"metric": 1.0}, "fresh_only": {"metric": 1.0}},
        )
        statuses = {(f["benchmark"], f["metric"]): f["status"] for f in findings}
        assert statuses[("full_only", "*")] == "skipped"
        assert statuses[("fresh_only", "*")] == "skipped"
        assert statuses[("both", "metric")] == "ok"


class TestManifestSeeds:
    def test_seed_keys_lifted_into_seeds_block(self):
        manifest = run_manifest(
            config={
                "seed": 7,
                "ontology_seed": 11,
                "workload_seed": "scale:3",
                "sizes": [1, 2],
                "trial_seeds": [1, 2, 3],  # scalar list: lifted
                "seed_map": {"a": 1},  # nested structure: stays out
            }
        )
        assert manifest["seeds"] == {
            "seed": 7,
            "ontology_seed": 11,
            "workload_seed": "scale:3",
            "trial_seeds": [1, 2, 3],
        }
        json.dumps(manifest)

    def test_no_seed_keys_gives_empty_block(self):
        manifest = run_manifest(config={"sizes": [1]})
        assert manifest["seeds"] == {}

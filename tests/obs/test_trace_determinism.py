"""Trace determinism: same seed, same span tree (modulo wall clock).

The simulation consults no wall clock and all randomness is seeded, so
two identical runs must produce identical span trees — same names, same
order (``seq``), same simulated times, same attributes — differing only
in the wall-clock ``start``/``end`` stamps.  :meth:`Span.signature`
projects exactly that identity.
"""

from __future__ import annotations

from repro.experiments import fig10_traced_run
from repro.obs import Observability, RingBufferSink


def traced_run(seed: int):
    sink = RingBufferSink()
    obs = Observability(sinks=[sink])
    summary = fig10_traced_run(obs, seed=seed, directory_count=3, services=3)
    return summary, sink


class TestTraceDeterminism:
    def test_same_seed_same_span_tree(self):
        summary_a, sink_a = traced_run(seed=42)
        summary_b, sink_b = traced_run(seed=42)
        assert summary_a == summary_b
        signatures_a = [span.signature() for span in sink_a.spans]
        signatures_b = [span.signature() for span in sink_b.spans]
        assert signatures_a == signatures_b
        # Sanity: the run exercised forwarding, not just local answers.
        names = {
            span.name for root in sink_a.spans for span in root.walk()
        }
        assert {"query.handle", "hop.forward", "hop.remote", "hop.response"} <= names

    def test_same_seed_same_lifecycle_events(self):
        _sa, sink_a = traced_run(seed=42)
        _sb, sink_b = traced_run(seed=42)
        signatures_a = [event.signature() for event in sink_a.events]
        signatures_b = [event.signature() for event in sink_b.events]
        assert signatures_a == signatures_b
        # Acceptance: a traced run surfaces at least three distinct
        # lifecycle event kinds (churn, election, handoff, ...).
        kinds = {event.kind for event in sink_a.events}
        assert len(kinds) >= 3

    def test_same_seed_same_timeseries_windows(self):
        _sa, sink_a = traced_run(seed=42)
        _sb, sink_b = traced_run(seed=42)
        assert sink_a.timeseries == sink_b.timeseries
        assert sink_a.timeseries  # the recorder produced windows
        moved = [w for w in sink_a.timeseries if w["deltas"]]
        assert moved  # and some windows saw activity

    def test_metrics_snapshot_is_deterministic(self):
        _summary_a, sink_a = traced_run(seed=42)
        _summary_b, sink_b = traced_run(seed=42)
        assert sink_a.metrics == sink_b.metrics
        assert sink_a.metrics  # flush() populated it

    def test_different_seed_changes_the_trace(self):
        _sa, sink_a = traced_run(seed=42)
        _sb, sink_b = traced_run(seed=43)
        signatures_a = [span.signature() for span in sink_a.spans]
        signatures_b = [span.signature() for span in sink_b.spans]
        assert signatures_a != signatures_b

"""Unit tests for the observability layer: spans, metrics, sinks, report."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_OBS,
    JsonlSink,
    MetricsRegistry,
    Observability,
    RingBufferSink,
    Tracer,
)
from repro.obs.report import load_trace, render_trace_report, strip_timestamps


class TestSpans:
    def test_nesting_builds_a_tree(self):
        finished = []
        tracer = Tracer(finished.append)
        with tracer.span("query.handle", trace_id="q0.1") as root:
            with tracer.span("query.parse") as parse:
                parse.attrs["bytes"] = 10
            tracer.event("bloom.test", peer=1, admitted=True)
        assert len(finished) == 1
        (span,) = finished
        assert span is root
        assert [child.name for child in span.children] == [
            "query.parse",
            "bloom.test",
        ]
        assert span.children[0].attrs == {"bytes": 10}

    def test_children_inherit_trace_id(self):
        tracer = Tracer()
        with tracer.span("query.handle", trace_id="q3.7"):
            with tracer.span("dag.descend") as child:
                pass
        assert child.trace_id == "q3.7"

    def test_seq_is_monotonic_in_open_order(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
            with tracer.span("c") as c:
                pass
        assert a.seq < b.seq < c.seq

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        event = tracer.event("hop.forward", peer=4)
        assert event.duration == 0.0
        assert tracer.finished == 1

    def test_signature_excludes_wall_clock(self):
        tracer = Tracer()
        with tracer.span("a", trace_id="t", sim_time=1.0) as one:
            tracer.event("b", flag=True)
        with tracer.span("a", trace_id="t", sim_time=1.0) as two:
            tracer.event("b", flag=True)
        two.seq, two.children[0].seq = one.seq, one.children[0].seq
        one.start, one.end = 0.0, 99.0  # wildly different wall clock
        assert one.signature() == two.signature()

    def test_to_dict_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("a", trace_id="t", sim_time=2.5) as span:
            tracer.event("b")
        record = json.loads(json.dumps(span.to_dict()))
        assert record["name"] == "a"
        assert record["children"][0]["name"] == "b"
        assert "duration_us" in record
        assert "duration_us" not in span.to_dict(timestamps=False)


class TestMetrics:
    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("net.messages", node=1).inc()
        registry.counter("net.messages", node=2).inc(5)
        assert registry.counter("net.messages", node=1).value == 1
        assert registry.counter("net.messages", node=2).value == 5
        assert len(registry) == 2

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        latency = registry.histogram("query.latency")
        for value in (1.0, 3.0, 2.0):
            latency.observe(value)
        assert latency.count == 3
        assert latency.mean == 2.0
        assert latency.min == 1.0 and latency.max == 3.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_scope_binds_labels_and_shares_registry(self):
        registry = MetricsRegistry()
        node_scope = registry.scope(node=3)
        node_scope.counter("dir.queries").inc()
        nested = node_scope.scope(run=1)
        nested.counter("dir.queries").inc()
        assert registry.counter("dir.queries", node=3).value == 1
        assert registry.counter("dir.queries", node=3, run=1).value == 1
        # The scope's snapshot is the whole registry's.
        assert nested.snapshot() == registry.snapshot()

    def test_snapshot_is_sorted_and_serializable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", node=9).inc()
        registry.histogram("c")
        snapshot = registry.snapshot()
        assert [record["name"] for record in snapshot] == ["a", "b", "c"]
        empty = snapshot[2]
        assert empty["min"] is None and empty["max"] is None
        json.dumps(snapshot)

    def test_histogram_quantiles_nearest_rank(self):
        registry = MetricsRegistry()
        latency = registry.histogram("query.latency")
        for value in range(1, 101):  # 1..100
            latency.observe(float(value))
        assert latency.quantile(0.5) == 50.0
        assert latency.quantile(0.95) == 95.0
        assert latency.quantile(0.99) == 99.0
        assert latency.quantile(1.0) == 100.0
        snapshot = latency.snapshot()
        assert (snapshot["p50"], snapshot["p95"], snapshot["p99"]) == (50.0, 95.0, 99.0)

    def test_quantiles_empty_and_invalid(self):
        registry = MetricsRegistry()
        latency = registry.histogram("h")
        assert latency.quantile(0.5) is None
        assert latency.snapshot()["p95"] is None
        with pytest.raises(ValueError):
            latency.quantile(0.0)
        with pytest.raises(ValueError):
            latency.quantile(1.5)

    def test_scope_label_collisions_resolve_innermost_wins(self):
        registry = MetricsRegistry()
        scope = registry.scope(node=1)
        # A call-site label overrides the scope's binding...
        scope.counter("x", node=2).inc()
        assert registry.counter("x", node=2).value == 1
        assert registry.counter("x", node=1).value == 0
        # ...and a nested scope overrides its parent.
        scope.scope(node=3).counter("y").inc()
        assert registry.counter("y", node=3).value == 1


class TestSinks:
    def test_ring_buffer_caps_spans(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sink.emit)
        for index in range(3):
            tracer.event(f"e{index}")
        assert [span.name for span in sink.spans] == ["e1", "e2"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            obs = Observability(sinks=[sink])
            with obs.span("query.handle", trace_id="q0.1", sim_time=1.0):
                obs.event("hop.forward", peer=2)
            obs.counter("dir.queries", node=0).inc()
            obs.close()
        spans, metrics = load_trace(path)
        assert len(spans) == 1
        assert spans[0]["children"][0]["attrs"] == {"peer": 2}
        assert metrics == [
            {"name": "dir.queries", "labels": {"node": 0}, "type": "counter", "value": 1}
        ]

    def test_jsonl_without_timestamps_is_deterministic(self, tmp_path):
        lines = []
        for _run in range(2):
            path = tmp_path / "trace.jsonl"
            with JsonlSink(path, timestamps=False) as sink:
                tracer = Tracer(sink.emit)
                with tracer.span("a", trace_id="t", sim_time=1.5):
                    tracer.event("b")
            lines.append(path.read_text())
        assert lines[0] == lines[1]

    def test_ring_buffer_event_wraparound(self):
        from repro.obs import EventLog

        sink = RingBufferSink(capacity=3)
        log = EventLog(sink.emit_event)
        for index in range(5):
            log.record(f"kind.{index}")
        # Only the most recent `capacity` events survive, in order.
        assert [event.kind for event in sink.events] == ["kind.2", "kind.3", "kind.4"]
        assert [event.seq for event in sink.events] == [3, 4, 5]
        assert log.emitted == 5

    def test_jsonl_records_are_flushed_line_by_line(self, tmp_path):
        # A run that dies mid-simulation must leave every finished record
        # on disk even though close() never ran.
        path = tmp_path / "crash.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink.emit)
        tracer.event("before.crash")
        content = path.read_text()  # sink still open — no close, no flush
        assert '"before.crash"' in content

    def test_jsonl_write_after_close_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink.emit)
        tracer.event("first")
        sink.close()
        tracer.event("second")  # reopen must append, not truncate
        sink.close()
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert names == ["first", "second"]


class TestObservabilityFacade:
    def test_scoped_shares_tracer_and_sinks(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        node_obs = obs.scoped(node=5)
        with node_obs.span("query.handle"):
            pass
        node_obs.counter("dir.queries").inc()
        assert len(sink.spans) == 1
        assert obs.metrics.counter("dir.queries", node=5).value == 1

    def test_flush_pushes_snapshot_to_sinks(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.counter("net.messages").inc(3)
        assert sink.metrics is None
        obs.flush()
        assert sink.metrics[0]["value"] == 3

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        obs = Observability(sinks=[sink])
        obs.counter("a").inc()
        obs.close()
        written = path.read_text()
        obs.close()  # second close: no duplicate metrics snapshot
        assert path.read_text() == written
        assert sum(1 for line in written.splitlines() if '"metrics"' in line) == 1

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError, match="mid-simulation"):
            with Observability(sinks=[JsonlSink(path)]) as obs:
                obs.event("before.failure", trace_id="t")
                obs.counter("net.messages").inc(2)
                raise RuntimeError("mid-simulation failure")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [record["type"] for record in records]
        # The span written before the crash survived and the final metrics
        # snapshot was still flushed by __exit__.
        assert kinds == ["span", "metrics"]
        assert records[1]["metrics"][0]["value"] == 2


class TestNullObservability:
    def test_disabled_and_free(self):
        assert NULL_OBS.enabled is False
        with NULL_OBS.span("anything", trace_id="t") as span:
            span.attrs["key"] = "value"  # writable, discarded
        NULL_OBS.event("e")
        NULL_OBS.counter("c", node=1).inc()
        NULL_OBS.histogram("h").observe(2.0)
        assert NULL_OBS.scoped(node=1) is NULL_OBS
        assert NULL_OBS.metrics.snapshot() == []
        NULL_OBS.flush()
        NULL_OBS.close()


class TestInstall:
    def _network(self):
        from repro.network.node import Network
        from repro.network.simulator import Simulator
        from repro.network.topology import Bounds, Position

        network = Network(Simulator(), bounds=Bounds(100, 100), radio_range=500.0)
        network.add_node(0, Position(0.0, 0.0))
        return network

    def _toy_directory_agent(self):
        from repro.protocols.base import DirectoryAgentBase

        class _Store:
            def __init__(self):
                self.obs = NULL_OBS

        class _Toy(DirectoryAgentBase):
            def __init__(self):
                super().__init__()
                self.directory = _Store()

        return _Toy()

    def test_install_wires_existing_directories(self):
        network = self._network()
        agent = network.nodes[0].add_agent(self._toy_directory_agent())
        obs = Observability()
        from repro.obs import install

        install(obs, network)
        assert agent.directory.obs is obs

    def test_directories_added_after_install_inherit_live_obs(self):
        # Regression: directories elected/installed *after* install() used
        # to keep tracing into NULL_OBS (the election/handoff blind spot).
        network = self._network()
        obs = Observability()
        from repro.obs import install

        install(obs, network)
        agent = network.nodes[0].add_agent(self._toy_directory_agent())
        assert agent.directory.obs is obs
        assert agent.request_cache.on_invalidate is not None

    def test_attach_without_installed_obs_stays_null(self):
        network = self._network()
        agent = network.nodes[0].add_agent(self._toy_directory_agent())
        assert agent.directory.obs is NULL_OBS
        assert agent.request_cache.on_invalidate is None


class TestReport:
    def _trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            obs = Observability(sinks=[sink])
            with obs.span("query.handle", trace_id="q0.1", sim_time=1.0) as span:
                span.attrs["directory"] = 0
                obs.event("hop.forward", peer=1)
            obs.event("hop.remote", trace_id="q0.1", sim_time=1.2, directory=1)
            obs.event("summary.push")  # untraced
            obs.counter("net.messages", node=0).inc(2)
            obs.close()
        return path

    def test_render_groups_by_trace_and_counts_hops(self, tmp_path):
        spans, metrics = load_trace(self._trace(tmp_path))
        report = render_trace_report(spans, metrics)
        assert "query q0.1 (2 root spans, 2 hop records)" in report
        assert "hop.forward" in report and "hop.remote" in report
        assert "untraced spans: 1" in report
        assert "net.messages" in report and "node=0" in report

    def test_strip_timestamps_is_the_deterministic_projection(self, tmp_path):
        spans, _metrics = load_trace(self._trace(tmp_path))
        stripped = strip_timestamps(spans[0])
        assert "duration_us" not in stripped
        assert all("duration_us" not in child for child in stripped["children"])
        assert stripped["name"] == "query.handle"

"""W3C-style trace context: parsing, parenting, and cross-process ids."""

from __future__ import annotations

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.spans import Span, TraceContext, Tracer


class TestTraceparent:
    def test_round_trip(self):
        context = TraceContext(trace_id="q0.7", span_id="n0.s3")
        assert context.to_traceparent() == "00-q0.7-n0.s3-01"
        assert TraceContext.from_traceparent("00-q0.7-n0.s3-01") == context

    def test_unsampled_flag(self):
        context = TraceContext("t", "s", sampled=False)
        assert context.to_traceparent().endswith("-00")
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed is not None and parsed.sampled is False

    @pytest.mark.parametrize(
        "header",
        [None, "", "garbage", "00-only-three", "00-a-b-c-d-e", "00--s-01"],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert TraceContext.from_traceparent(header) is None


class TestTracerContext:
    def test_spans_get_ids_and_in_process_parenting(self):
        done: list[Span] = []
        tracer = Tracer(emit=done.append)
        with tracer.span("outer", trace_id="t1"):
            with tracer.span("inner"):
                pass
        (outer,) = done
        inner = outer.children[0]
        assert outer.span_id == "s1"
        assert inner.span_id == "s2"
        assert inner.parent_span_id == outer.span_id

    def test_origin_prefixes_span_ids(self):
        done: list[Span] = []
        tracer = Tracer(emit=done.append, origin="n4.")
        with tracer.span("q", trace_id="t"):
            pass
        assert done[0].span_id == "n4.s1"

    def test_explicit_parent_beats_ambient(self):
        done: list[Span] = []
        tracer = Tracer(emit=done.append)
        remote = TraceContext(trace_id="q0.9", span_id="n9.s5")
        with tracer.span("query.handle", trace_id="q0.9", parent=remote):
            pass
        assert done[0].trace_id == "q0.9"
        assert done[0].parent_span_id == "n9.s5"

    def test_activate_sets_ambient_parent_for_root_spans(self):
        done: list[Span] = []
        tracer = Tracer(emit=done.append)
        context = TraceContext(trace_id="q1.2", span_id="n1.c1")
        with tracer.activate(context):
            with tracer.span("query.handle"):
                pass
        assert done[0].trace_id == "q1.2"
        assert done[0].parent_span_id == "n1.c1"
        # The ambient context is popped on exit.
        assert tracer.current_context() is None

    def test_activate_none_is_a_no_op(self):
        tracer = Tracer()
        with tracer.activate(None):
            assert tracer.current_context() is None

    def test_current_traceparent_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current_traceparent() is None
        with tracer.span("outer", trace_id="t7"):
            header = tracer.current_traceparent()
            assert header == "00-t7-s1-01"
        assert tracer.current_traceparent() is None

    def test_new_context_does_not_consume_span_seq(self):
        """Minting client contexts must not shift span sequence numbers —
        sim trace signatures depend on them."""
        done: list[Span] = []
        tracer = Tracer(emit=done.append)
        context = tracer.new_context("q0.1")
        assert context.span_id == "c1"
        with tracer.span("s", trace_id="t"):
            pass
        assert done[0].span_id == "s1"  # unaffected by the minted context

    def test_signature_excludes_span_ids(self):
        """Signatures stay byte-compatible with pre-tracing recordings."""
        done: list[Span] = []
        tracer = Tracer(emit=done.append)
        with tracer.span("a", trace_id="t"):
            pass
        signature = done[0].signature()
        assert "span_id" not in signature
        assert "parent_span_id" not in signature
        assert "span_id" in done[0].to_dict()


class TestNullObservability:
    def test_null_tracer_has_the_context_surface(self):
        assert NULL_OBS.tracer.current_context() is None
        assert NULL_OBS.tracer.current_traceparent() is None
        with NULL_OBS.tracer.activate(TraceContext("t", "s")):
            assert NULL_OBS.tracer.current_traceparent() is None

    def test_live_obs_context_surface_matches(self):
        obs = Observability()
        context = TraceContext("t", "s")
        with obs.tracer.activate(context):
            assert obs.tracer.current_context() == context

"""The telemetry plane: sink buffering, trace stitching, the collector
service's ingest/answer surface, and a real socket round trip."""

from __future__ import annotations

import asyncio
import json
import os

from repro.obs import Observability
from repro.obs.collector import (
    CollectorClient,
    CollectorSink,
    TelemetryCollector,
    query_collector,
    render_stitched,
    render_top,
    stitch_trace,
)
from repro.obs.spans import TraceContext


def _span_record(
    name: str,
    trace_id: str,
    span_id: str,
    parent: str | None = None,
    origin: int = 0,
    duration: float = 100.0,
    children=(),
    attrs=None,
):
    return {
        "type": "span",
        "name": name,
        "seq": int(span_id.rsplit("s", 1)[-1].rsplit("c", 1)[-1] or 0),
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_span_id": parent,
        "sim_time": 0.0,
        "duration_us": duration,
        "attrs": attrs or {},
        "children": list(children),
        "origin_node": origin,
    }


class TestCollectorSink:
    def test_buffers_every_record_kind_in_jsonl_shape(self):
        obs = Observability()
        sink = CollectorSink()
        obs.sinks.append(sink)
        with obs.span("query.handle", trace_id="q0.1"):
            pass
        obs.lifecycle("churn.join", sim_time=0.0, node=3)
        obs.counter("dir.queries", node=0).inc()
        obs.flush()
        kinds = [json.loads(raw)["type"] for raw in sink.buffer]
        assert kinds == ["span", "event", "metrics"]
        span = json.loads(sink.buffer[0])
        assert span["name"] == "query.handle"
        assert span["span_id"] == "s1"

    def test_drain_and_backlog(self):
        sink = CollectorSink()
        for i in range(5):
            sink._push({"type": "event", "i": i})
        assert sink.backlog == 5
        first = sink.drain(3)
        assert len(first) == 3 and sink.backlog == 2
        assert sink.shipped == 3
        assert [json.loads(r)["i"] for r in sink.drain(10)] == [3, 4]

    def test_buffer_is_bounded_and_drops_oldest(self):
        sink = CollectorSink(limit=3)
        for i in range(5):
            sink._push({"type": "event", "i": i})
        assert sink.backlog == 3
        assert sink.dropped == 2
        assert [json.loads(r)["i"] for r in sink.buffer] == [2, 3, 4]


class TestStitchTrace:
    def _three_process_records(self):
        # Client (node 1) roots the trace; directory A (node 0) parents
        # onto the client context; directory B (node 2) parents onto A's
        # hop.remote-side query.handle span.
        client_root = _span_record(
            "client.query", "q0.5", "n1.c1", origin=1, duration=0.0
        )
        handle = _span_record(
            "query.handle", "q0.5", "n0.s1", parent="n1.c1", origin=0, duration=900.0
        )
        remote = _span_record(
            "hop.remote", "q0.5", "n2.s1", parent="n0.s1", origin=2, duration=400.0
        )
        return [client_root, remote, handle]  # arrival order scrambled

    def test_stitches_across_processes(self):
        stitched = stitch_trace(self._three_process_records(), "q0.5")
        assert stitched["processes"] == [0, 1, 2]
        assert stitched["span_count"] == 3
        (root,) = stitched["roots"]
        assert root["name"] == "client.query"
        (handle,) = root["children"]
        assert handle["origin_node"] == 0
        (remote,) = handle["children"]
        assert remote["origin_node"] == 2

    def test_stage_breakdown_sums_own_durations(self):
        stitched = stitch_trace(self._three_process_records(), "q0.5")
        assert stitched["stages"]["query.handle"]["total_us"] == 900.0
        assert stitched["stages"]["hop.remote"]["total_us"] == 400.0

    def test_nested_children_are_flattened(self):
        child = _span_record("query.parse", "t", "n0.s2", parent="n0.s1")
        parent = _span_record("query.handle", "t", "n0.s1", children=[child])
        stitched = stitch_trace([parent], "t")
        assert stitched["span_count"] == 2
        assert stitched["roots"][0]["children"][0]["name"] == "query.parse"

    def test_unknown_trace_is_none(self):
        assert stitch_trace(self._three_process_records(), "nope") is None

    def test_orphan_parent_becomes_a_root(self):
        orphan = _span_record("hop.remote", "t", "n2.s1", parent="never-arrived")
        stitched = stitch_trace([orphan], "t")
        assert [root["name"] for root in stitched["roots"]] == ["hop.remote"]

    def test_render_mentions_every_process(self):
        text = render_stitched(stitch_trace(self._three_process_records(), "q0.5"))
        assert "3 process(es)" in text
        assert "[n1] client.query" in text
        assert "per-stage totals:" in text


class TestCollectorService:
    def _collector_with_trace(self):
        collector = TelemetryCollector("unix:/unused")
        collector.ingest(1, _span_record("client.query", "q0.5", "n1.c1", duration=0.0))
        collector.ingest(
            0, _span_record("query.handle", "q0.5", "n0.s1", parent="n1.c1")
        )
        collector.ingest(
            2, _span_record("hop.remote", "q0.5", "n2.s1", parent="n0.s1")
        )
        collector.ingest(0, _span_record("query.handle", "q0.9", "n0.s2"))
        return collector

    def test_resolve_latest_and_widest(self):
        collector = self._collector_with_trace()
        assert collector.resolve_trace_id("latest") == "q0.9"
        assert collector.resolve_trace_id("widest") == "q0.5"
        assert collector.resolve_trace_id("q0.5") == "q0.5"
        assert collector.resolve_trace_id("absent") is None

    def test_answer_trace_returns_stitched_json(self):
        collector = self._collector_with_trace()
        reply = collector.answer("trace", "widest")
        stitched = json.loads(reply.body)
        assert stitched["trace_id"] == "q0.5"
        assert stitched["processes"] == [0, 1, 2]

    def test_answer_top_counts_partials(self):
        collector = TelemetryCollector("unix:/unused")
        collector.ingest(
            0,
            _span_record(
                "query.respond", "q0.1", "n0.s1", attrs={"partial": True}, duration=0.0
            ),
        )
        collector.ingest(
            0,
            _span_record(
                "query.respond", "q0.2", "n0.s2", attrs={"partial": False}, duration=0.0
            ),
        )
        snapshot = json.loads(collector.answer("top").body)
        assert snapshot["nodes"]["0"]["partial_pct"] == 50.0
        assert snapshot["traces"] == 2
        assert "node" in render_top(snapshot)

    def test_qps_from_successive_metric_snapshots(self):
        collector = TelemetryCollector("unix:/unused")
        metrics = lambda total: {  # noqa: E731
            "type": "metrics",
            "metrics": [
                {"name": "dir.queries", "labels": {"node": 0}, "type": "counter", "value": total}
            ],
        }
        collector.ingest(0, metrics(10))
        collector.nodes[0]["metrics_at"] -= 2.0  # pretend 2 s passed
        collector.ingest(0, metrics(30))
        assert collector.nodes[0]["qps"] > 0
        # ~10 qps modulo timer noise
        assert 5.0 < collector.nodes[0]["qps"] < 20.0

    def test_merged_metrics_carry_origin_label(self):
        collector = TelemetryCollector("unix:/unused")
        record = {
            "type": "metrics",
            "metrics": [
                {"name": "dir.queries", "labels": {"node": 0}, "type": "counter", "value": 3}
            ],
        }
        collector.ingest(0, record)
        collector.ingest(2, record)
        merged = collector.merged_metrics()
        assert [series["labels"]["origin"] for series in merged] == [0, 2]
        exposition = collector.answer("metrics").body
        assert 'dir_queries_total{node="0",origin="0"} 3' in exposition

    def test_unknown_query_kind_is_an_error_reply(self):
        collector = TelemetryCollector("unix:/unused")
        assert collector.answer("bogus").kind == "error"

    def test_out_artifact_is_timeline_compatible_jsonl(self, tmp_path):
        out = tmp_path / "fleet.jsonl"

        async def scenario():
            collector = TelemetryCollector(
                f"unix:{os.path.join(str(tmp_path), 'c.sock')}", out=str(out)
            )
            await collector.start()
            collector.ingest(0, _span_record("query.handle", "q0.1", "n0.s1"))
            await collector.close()

        asyncio.run(scenario())
        (line,) = out.read_text().splitlines()
        record = json.loads(line)
        assert record["type"] == "span"
        assert record["origin_node"] == 0


class TestSocketRoundTrip:
    def test_client_ships_and_operator_queries(self, tmp_path):
        """CollectorClient → TelemetryCollector → query_collector, all
        over a real unix socket."""
        address = f"unix:{os.path.join(str(tmp_path), 'collector.sock')}"

        async def scenario():
            collector = TelemetryCollector(address)
            await collector.start()

            obs = Observability()
            obs.tracer.origin = "n7."
            client = CollectorClient(obs, address, node_id=7, role="loadgen")
            await client.start()
            with obs.tracer.activate(TraceContext("q0.3", "n1.c1")):
                with obs.span("query.handle", trace_id="q0.3"):
                    pass
            await client.ship()
            await asyncio.sleep(0.05)

            top = await query_collector(address, "top")
            stitched = await query_collector(address, "trace", "latest")
            await client.close()
            await collector.close()
            return top, stitched

        top, stitched = asyncio.run(scenario())
        assert top["nodes"]["7"]["role"] == "loadgen"
        assert top["nodes"]["7"]["records"] >= 1
        assert stitched["trace_id"] == "q0.3"
        (root,) = stitched["roots"]
        assert root["span_id"] == "n7.s1"
        assert root["parent_span_id"] == "n1.c1"
        assert root["origin_node"] == 7

    def test_query_collector_raises_when_unreachable(self, tmp_path):
        address = f"unix:{os.path.join(str(tmp_path), 'absent.sock')}"

        async def scenario():
            try:
                await query_collector(address, "top")
            except ConnectionError:
                return True
            return False

        assert asyncio.run(scenario())

    def test_client_survives_missing_collector(self, tmp_path):
        """A loadgen pointed at a dead collector keeps running; records
        stay buffered."""
        address = f"unix:{os.path.join(str(tmp_path), 'dead.sock')}"

        async def scenario():
            obs = Observability()
            client = CollectorClient(obs, address, node_id=1, role="loadgen")
            await client.start()
            obs.counter("dir.queries", node=1).inc()
            await client.ship()
            backlog = client.sink.backlog
            await client.close()
            return backlog

        assert asyncio.run(scenario()) >= 1

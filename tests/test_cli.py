"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCapacity:
    def test_prints_capacities(self, capsys):
        assert main(["capacity", "--p", "2", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "first-level entries" in out
        assert "nesting levels" in out


class TestWorkload:
    def test_writes_documents(self, tmp_path, capsys):
        rc = main(
            [
                "workload",
                "--services",
                "3",
                "--ontologies",
                "4",
                "--seed",
                "5",
                "--outdir",
                str(tmp_path),
                "--wsdl",
            ]
        )
        assert rc == 0
        assert len(list(tmp_path.glob("ontology_*.xml"))) == 4
        assert len(list(tmp_path.glob("service_*.xml"))) == 3 + 3  # incl. wsdl twins
        assert len(list(tmp_path.glob("request_*.xml"))) == 3

    def test_documents_parse_back(self, tmp_path):
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "1", "--outdir", str(tmp_path)]
        )
        from repro.ontology.owl_xml import ontology_from_xml
        from repro.services.xml_codec import profile_from_xml

        for path in tmp_path.glob("ontology_*.xml"):
            ontology_from_xml(path.read_text())
        for path in tmp_path.glob("service_*.xml"):
            profile, annotations = profile_from_xml(path.read_text())
            assert profile.provided
            assert annotations  # workload embeds codes


class TestMatch:
    @pytest.fixture()
    def workload_dir(self, tmp_path) -> pathlib.Path:
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "2", "--outdir", str(tmp_path)]
        )
        return tmp_path

    def test_derived_request_matches(self, workload_dir, capsys):
        rc = main(
            [
                "match",
                str(workload_dir / "service_001.xml"),
                str(workload_dir / "request_001.xml"),
                "--ontologies",
                str(workload_dir),
            ]
        )
        assert rc == 0
        assert "distance=" in capsys.readouterr().out

    def test_cross_request_usually_fails(self, workload_dir, capsys):
        rc = main(
            [
                "match",
                str(workload_dir / "service_000.xml"),
                str(workload_dir / "request_001.xml"),
                "--ontologies",
                str(workload_dir),
            ]
        )
        out = capsys.readouterr().out
        assert ("NO MATCH" in out) == (rc == 1)

    def test_missing_ontologies_dir(self, workload_dir, tmp_path_factory, capsys):
        empty = tmp_path_factory.mktemp("empty")
        rc = main(
            [
                "match",
                str(workload_dir / "service_000.xml"),
                str(workload_dir / "request_000.xml"),
                "--ontologies",
                str(empty),
            ]
        )
        assert rc == 2


class TestExperimentCommand:
    def test_e7_runs_quickly(self, capsys):
        assert main(["experiment", "e7"]) == 0
        out = capsys.readouterr().out
        assert "first-level entries" in out
        assert "===== e7 =====" in out


class TestInspect:
    def test_inspect_prints_graphs(self, tmp_path, capsys):
        main(
            ["workload", "--services", "3", "--ontologies", "3", "--seed", "4", "--outdir", str(tmp_path)]
        )
        capsys.readouterr()
        rc = main(["inspect", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loaded 3 service(s)" in out
        assert "graph over" in out
        assert "Capability_" in out

    def test_inspect_empty_dir(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path)]) == 2


class TestMatchmakerCommand:
    def test_stage_funnel_printed(self, tmp_path, capsys):
        main(
            ["workload", "--services", "4", "--ontologies", "3", "--seed", "5", "--outdir", str(tmp_path)]
        )
        capsys.readouterr()
        rc = main(
            [
                "matchmaker",
                str(tmp_path),
                "--request",
                "request_000.xml",
                "--min-overlap",
                "1",
                "--top-k",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "StagedMatchmaker: 4 services" in out
        assert "prefilter:" in out and "subsume:" in out
        assert "request_000.xml" in out

    def test_empty_dir(self, tmp_path):
        assert main(["matchmaker", str(tmp_path)]) == 2


class TestValidate:
    def test_clean_workload_passes(self, tmp_path, capsys):
        main(
            ["workload", "--services", "3", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_unknown_concept_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        rogue = (
            "<Service uri='urn:x:svc:rogue' name='r'>"
            "<Capability uri='urn:x:cap:r' name='c' provided='true'>"
            "<output concept='http://unknown.org/onto#X'/>"
            "</Capability></Service>"
        )
        (tmp_path / "service_zz.xml").write_text(rogue)
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unknown concept http://unknown.org/onto#X" in out

    def test_stale_codes_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "1", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        doc = (tmp_path / "service_000.xml").read_text()
        import re

        stale = re.sub(r'codesVersion="\d+"', 'codesVersion="999"', doc)
        (tmp_path / "service_000.xml").write_text(stale)
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1
        assert "stale codes" in capsys.readouterr().out

    def test_malformed_document_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "1", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        (tmp_path / "service_bad.xml").write_text("<Service")
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1

    def test_empty_dir(self, tmp_path):
        assert main(["validate", str(tmp_path)]) == 2


class TestTraceReport:
    def test_renders_jsonl_trace(self, tmp_path, capsys):
        from repro.obs import JsonlSink, Observability

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            obs = Observability(sinks=[sink])
            with obs.span("query.handle", trace_id="q0.1", sim_time=0.5):
                obs.event("hop.forward", peer=2)
            obs.counter("dir.queries", node=0).inc()
            obs.close()
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "query q0.1" in out
        assert "hop.forward" in out
        assert "dir.queries" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-report", str(path)]) == 1


def _traced_run_file(tmp_path) -> pathlib.Path:
    """Produce a run file with events, windows, and final metrics."""
    from repro.network.simulator import Simulator
    from repro.obs import JsonlSink, Observability

    path = tmp_path / "run.jsonl"
    sim = Simulator()
    with JsonlSink(path) as sink:
        obs = Observability(sinks=[sink])
        obs.start_timeseries(sim, interval=1.0)
        sim.schedule(0.5, lambda: obs.counter("dir.queries", node=0).inc())
        sim.schedule(
            1.5, lambda: obs.histogram("query.latency", node=0).observe(0.25)
        )
        sim.run(until=2.0)
        obs.lifecycle("churn.join", sim_time=1.2, node=7, cause="late_join")
        obs.close()
    return path


class TestObsTimeline:
    def test_merges_events_and_windows(self, tmp_path, capsys):
        path = _traced_run_file(tmp_path)
        assert main(["obs", "timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "churn.join" in out
        assert "cause=late_join" in out
        assert "window" in out
        assert "dir.queries" in out
        assert "p95" in out  # quantiles render in the final metric table

    def test_export_flags_write_csv_and_openmetrics(self, tmp_path, capsys):
        path = _traced_run_file(tmp_path)
        csv_path = tmp_path / "windows.csv"
        om_path = tmp_path / "metrics.prom"
        rc = main(
            [
                "obs",
                "timeline",
                str(path),
                "--csv",
                str(csv_path),
                "--openmetrics",
                str(om_path),
            ]
        )
        assert rc == 0
        assert csv_path.read_text().startswith("window,")
        om = om_path.read_text()
        assert "dir_queries_total" in om
        assert om.endswith("# EOF\n")

    def test_missing_file(self, tmp_path):
        assert main(["obs", "timeline", str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_run(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "timeline", str(path)]) == 1


def _bench_file(directory: pathlib.Path, name: str, metrics: dict) -> None:
    import json

    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": name,
        "config": {},
        "metrics": [
            {"name": key, "value": value, "units": "seconds"}
            for key, value in metrics.items()
        ],
    }
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestObsDiff:
    def test_flags_changes_beyond_threshold(self, tmp_path, capsys):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _bench_file(base, "fig9", {"match_s": 1.0, "steady": 1.0})
        _bench_file(cand, "fig9", {"match_s": 2.0, "steady": 1.01})
        assert main(["obs", "diff", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "match_s" in out
        assert "<<<" in out
        assert out.count("<<<") == 1  # steady is inside the threshold

    def test_accepts_single_files(self, tmp_path, capsys):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _bench_file(base, "fig9", {"m": 1.0})
        _bench_file(cand, "fig9", {"m": 1.0})
        rc = main(
            [
                "obs",
                "diff",
                str(base / "BENCH_fig9.json"),
                str(cand / "BENCH_fig9.json"),
            ]
        )
        assert rc == 0

    def test_missing_inputs(self, tmp_path):
        assert main(["obs", "diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 2


class TestObsRegress:
    def test_self_comparison_passes(self, tmp_path, capsys):
        base = tmp_path / "base"
        _bench_file(base, "fig9", {"match_s": 1.0})
        rc = main(
            ["obs", "regress", "--baseline", str(base), "--candidate", str(base)]
        )
        assert rc == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_injected_regression_fails_nonzero(self, tmp_path, capsys):
        import json

        base, cand = tmp_path / "base", tmp_path / "cand"
        _bench_file(base, "fig9", {"match_s": 1.0})
        _bench_file(cand, "fig9", {"match_s": 100.0})
        config = tmp_path / "tol.json"
        config.write_text(json.dumps({"default": {"tolerance": 0.5}}))
        rc = main(
            [
                "obs",
                "regress",
                "--baseline",
                str(base),
                "--candidate",
                str(cand),
                "--config",
                str(config),
            ]
        )
        assert rc == 1
        assert "regressed" in capsys.readouterr().out

    def test_empty_dirs_exit_2(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        rc = main(["obs", "regress", "--baseline", str(base), "--candidate", str(cand)])
        assert rc == 2


class TestDirStats:
    def _workload(self, tmp_path):
        main(
            [
                "workload",
                "--services",
                "6",
                "--ontologies",
                "4",
                "--seed",
                "5",
                "--outdir",
                str(tmp_path),
            ]
        )

    def test_plain_directory_stats(self, tmp_path, capsys):
        self._workload(tmp_path)
        capsys.readouterr()
        assert main(["dir", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "6 service(s)" in out
        assert "SemanticDirectory" in out

    def test_sharded_stats_report_skew(self, tmp_path, capsys):
        self._workload(tmp_path)
        capsys.readouterr()
        assert main(["dir", "stats", str(tmp_path), "--shards", "4", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "skew (max/mean)" in out
        assert "shard" in out and "share" in out
        # one table row per shard, plus the per-shard description dump
        assert "ShardRouter" in out
        # per-shard capability counts sum to the published total
        assert "6 service(s)" in out

    def test_missing_workload_dir_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["dir", "stats", str(empty)]) == 2

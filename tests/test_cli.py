"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCapacity:
    def test_prints_capacities(self, capsys):
        assert main(["capacity", "--p", "2", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "first-level entries" in out
        assert "nesting levels" in out


class TestWorkload:
    def test_writes_documents(self, tmp_path, capsys):
        rc = main(
            [
                "workload",
                "--services",
                "3",
                "--ontologies",
                "4",
                "--seed",
                "5",
                "--outdir",
                str(tmp_path),
                "--wsdl",
            ]
        )
        assert rc == 0
        assert len(list(tmp_path.glob("ontology_*.xml"))) == 4
        assert len(list(tmp_path.glob("service_*.xml"))) == 3 + 3  # incl. wsdl twins
        assert len(list(tmp_path.glob("request_*.xml"))) == 3

    def test_documents_parse_back(self, tmp_path):
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "1", "--outdir", str(tmp_path)]
        )
        from repro.ontology.owl_xml import ontology_from_xml
        from repro.services.xml_codec import profile_from_xml

        for path in tmp_path.glob("ontology_*.xml"):
            ontology_from_xml(path.read_text())
        for path in tmp_path.glob("service_*.xml"):
            profile, annotations = profile_from_xml(path.read_text())
            assert profile.provided
            assert annotations  # workload embeds codes


class TestMatch:
    @pytest.fixture()
    def workload_dir(self, tmp_path) -> pathlib.Path:
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "2", "--outdir", str(tmp_path)]
        )
        return tmp_path

    def test_derived_request_matches(self, workload_dir, capsys):
        rc = main(
            [
                "match",
                str(workload_dir / "service_001.xml"),
                str(workload_dir / "request_001.xml"),
                "--ontologies",
                str(workload_dir),
            ]
        )
        assert rc == 0
        assert "distance=" in capsys.readouterr().out

    def test_cross_request_usually_fails(self, workload_dir, capsys):
        rc = main(
            [
                "match",
                str(workload_dir / "service_000.xml"),
                str(workload_dir / "request_001.xml"),
                "--ontologies",
                str(workload_dir),
            ]
        )
        out = capsys.readouterr().out
        assert ("NO MATCH" in out) == (rc == 1)

    def test_missing_ontologies_dir(self, workload_dir, tmp_path_factory, capsys):
        empty = tmp_path_factory.mktemp("empty")
        rc = main(
            [
                "match",
                str(workload_dir / "service_000.xml"),
                str(workload_dir / "request_000.xml"),
                "--ontologies",
                str(empty),
            ]
        )
        assert rc == 2


class TestExperimentCommand:
    def test_e7_runs_quickly(self, capsys):
        assert main(["experiment", "e7"]) == 0
        out = capsys.readouterr().out
        assert "first-level entries" in out
        assert "===== e7 =====" in out


class TestInspect:
    def test_inspect_prints_graphs(self, tmp_path, capsys):
        main(
            ["workload", "--services", "3", "--ontologies", "3", "--seed", "4", "--outdir", str(tmp_path)]
        )
        capsys.readouterr()
        rc = main(["inspect", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loaded 3 service(s)" in out
        assert "graph over" in out
        assert "Capability_" in out

    def test_inspect_empty_dir(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path)]) == 2


class TestValidate:
    def test_clean_workload_passes(self, tmp_path, capsys):
        main(
            ["workload", "--services", "3", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_unknown_concept_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "2", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        rogue = (
            "<Service uri='urn:x:svc:rogue' name='r'>"
            "<Capability uri='urn:x:cap:r' name='c' provided='true'>"
            "<output concept='http://unknown.org/onto#X'/>"
            "</Capability></Service>"
        )
        (tmp_path / "service_zz.xml").write_text(rogue)
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unknown concept http://unknown.org/onto#X" in out

    def test_stale_codes_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "1", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        doc = (tmp_path / "service_000.xml").read_text()
        import re

        stale = re.sub(r'codesVersion="\d+"', 'codesVersion="999"', doc)
        (tmp_path / "service_000.xml").write_text(stale)
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1
        assert "stale codes" in capsys.readouterr().out

    def test_malformed_document_flagged(self, tmp_path, capsys):
        main(
            ["workload", "--services", "1", "--ontologies", "3", "--seed", "6", "--outdir", str(tmp_path)]
        )
        (tmp_path / "service_bad.xml").write_text("<Service")
        capsys.readouterr()
        assert main(["validate", str(tmp_path)]) == 1

    def test_empty_dir(self, tmp_path):
        assert main(["validate", str(tmp_path)]) == 2


class TestTraceReport:
    def test_renders_jsonl_trace(self, tmp_path, capsys):
        from repro.obs import JsonlSink, Observability

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            obs = Observability(sinks=[sink])
            with obs.span("query.handle", trace_id="q0.1", sim_time=0.5):
                obs.event("hop.forward", peer=2)
            obs.counter("dir.queries", node=0).inc()
            obs.close()
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "query q0.1" in out
        assert "hop.forward" in out
        assert "dir.queries" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-report", str(path)]) == 1

"""Tests for the QoS/context model (Amigo-S §2.2 extension)."""

import pytest

from repro.services.qos import (
    ContextCondition,
    ContextSnapshot,
    Direction,
    QosConstraint,
    QosOffer,
    QosProfile,
    QosRequirement,
    UnknownAttributeError,
    direction_of,
)


class TestDirections:
    def test_well_known(self):
        assert direction_of("latency_ms") is Direction.LOWER_IS_BETTER
        assert direction_of("throughput_kbps") is Direction.HIGHER_IS_BETTER

    def test_extra_declaration(self):
        assert (
            direction_of("frobnication", {"frobnication": Direction.HIGHER_IS_BETTER})
            is Direction.HIGHER_IS_BETTER
        )

    def test_unknown_rejected(self):
        with pytest.raises(UnknownAttributeError):
            direction_of("mystery_metric")


class TestQosOffer:
    def test_value_lookup(self):
        offer = QosOffer.of(latency_ms=20.0, reliability=0.99)
        assert offer.value("latency_ms") == 20.0
        assert offer.value("price") is None

    def test_truthiness(self):
        assert QosOffer.of(latency_ms=1.0)
        assert not QosOffer()


class TestSatisfaction:
    def test_lower_is_better_bound(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0))
        assert requirement.satisfied_by(QosOffer.of(latency_ms=20.0))
        assert not requirement.satisfied_by(QosOffer.of(latency_ms=80.0))

    def test_higher_is_better_bound(self):
        requirement = QosRequirement.where(QosConstraint("throughput_kbps", 500.0))
        assert requirement.satisfied_by(QosOffer.of(throughput_kbps=800.0))
        assert not requirement.satisfied_by(QosOffer.of(throughput_kbps=300.0))

    def test_missing_attribute_fails_hard_constraint(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0))
        assert not requirement.satisfied_by(QosOffer())

    def test_soft_constraint_never_disqualifies(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0, hard=False))
        assert requirement.satisfied_by(QosOffer.of(latency_ms=500.0))
        assert requirement.satisfied_by(QosOffer())

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            QosConstraint("latency_ms", 50.0, weight=0.0)


class TestUtility:
    def test_unconstrained_is_one(self):
        assert QosRequirement().utility(QosOffer.of(latency_ms=10.0)) == 1.0

    def test_better_offers_score_higher(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 100.0))
        fast = requirement.utility(QosOffer.of(latency_ms=10.0))
        slow = requirement.utility(QosOffer.of(latency_ms=90.0))
        assert fast > slow

    def test_at_bound_scores_half(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 100.0))
        assert requirement.utility(QosOffer.of(latency_ms=100.0)) == pytest.approx(0.5)
        higher = QosRequirement.where(QosConstraint("throughput_kbps", 100.0))
        assert higher.utility(QosOffer.of(throughput_kbps=100.0)) == pytest.approx(0.5)

    def test_higher_is_better_saturates(self):
        requirement = QosRequirement.where(QosConstraint("throughput_kbps", 100.0))
        assert requirement.utility(QosOffer.of(throughput_kbps=10_000.0)) == pytest.approx(1.0)

    def test_weights_blend(self):
        requirement = QosRequirement.where(
            QosConstraint("latency_ms", 100.0, weight=3.0),
            QosConstraint("reliability", 0.5, weight=1.0),
        )
        offer = QosOffer.of(latency_ms=100.0, reliability=0.5)
        assert requirement.utility(offer) == pytest.approx(0.5)

    def test_violating_soft_scores_zero_for_attribute(self):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0, hard=False))
        assert requirement.utility(QosOffer.of(latency_ms=500.0)) == 0.0

    def test_utility_in_unit_interval(self):
        requirement = QosRequirement.where(
            QosConstraint("latency_ms", 10.0),
            QosConstraint("throughput_kbps", 100.0),
        )
        for latency in (0.1, 5.0, 10.0):
            for throughput in (100.0, 500.0, 10_000.0):
                utility = requirement.utility(
                    QosOffer.of(latency_ms=latency, throughput_kbps=throughput)
                )
                assert 0.0 <= utility <= 1.0


class TestContext:
    def test_empty_condition_always_holds(self):
        assert ContextCondition().holds_in(ContextSnapshot())

    def test_single_value(self):
        condition = ContextCondition.requires(location="home")
        assert condition.holds_in(ContextSnapshot.of(location="home"))
        assert not condition.holds_in(ContextSnapshot.of(location="office"))
        assert not condition.holds_in(ContextSnapshot())

    def test_alternatives(self):
        condition = ContextCondition.requires(location=("home", "office"))
        assert condition.holds_in(ContextSnapshot.of(location="office"))

    def test_conjunction(self):
        condition = ContextCondition.requires(location="home", power="mains")
        assert condition.holds_in(ContextSnapshot.of(location="home", power="mains"))
        assert not condition.holds_in(ContextSnapshot.of(location="home", power="battery"))


class TestQosProfile:
    def test_lookup(self):
        profile = QosProfile.build(
            {
                "urn:x:cap:a": (QosOffer.of(latency_ms=5.0), ContextCondition()),
            }
        )
        assert profile.offer_for("urn:x:cap:a").value("latency_ms") == 5.0
        assert profile.offer_for("urn:x:cap:other").value("latency_ms") is None
        assert profile.condition_for("urn:x:cap:other").holds_in(ContextSnapshot())

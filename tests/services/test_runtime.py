"""Tests for conversation sessions and the service runtime."""

import pytest

from repro.services.process import Invoke, Repeat, choice, sequence
from repro.services.profile import Capability, ServiceProfile
from repro.services.runtime import (
    ProtocolViolation,
    ServiceRuntime,
    ServiceSession,
    UnknownOperationError,
)


def media_process():
    return sequence(
        Invoke("login"),
        Repeat(body=choice(Invoke("browse"), Invoke("play"))),
        Invoke("logout"),
    )


class TestServiceSession:
    def test_valid_run_completes(self):
        session = ServiceSession(media_process())
        for operation in ("login", "browse", "play", "logout"):
            session.invoke(operation)
        assert session.can_finish
        session.close()
        assert session.finished

    def test_out_of_order_rejected(self):
        session = ServiceSession(media_process())
        with pytest.raises(ProtocolViolation, match="expected one of: login"):
            session.invoke("play")

    def test_close_mid_protocol_rejected(self):
        session = ServiceSession(media_process())
        session.invoke("login")
        assert not session.can_finish
        with pytest.raises(ProtocolViolation, match="incomplete"):
            session.close()

    def test_closed_session_rejects_invocations(self):
        session = ServiceSession(media_process())
        session.invoke("login")
        session.invoke("logout")
        session.close()
        with pytest.raises(ProtocolViolation, match="closed"):
            session.invoke("login")

    def test_allowed_operations_track_state(self):
        session = ServiceSession(media_process())
        assert session.allowed_operations() == {"login"}
        session.invoke("login")
        assert session.allowed_operations() == {"browse", "play", "logout"}

    def test_unconstrained_service(self):
        session = ServiceSession(None)
        session.invoke("anything")
        session.invoke("whatever")
        assert session.can_finish
        session.close()

    def test_invocation_log(self):
        session = ServiceSession(media_process())
        session.invoke("login")
        session.invoke("play")
        assert session.state.invocations == ["login", "play"]


class TestServiceRuntime:
    @pytest.fixture()
    def runtime(self):
        profile = ServiceProfile(
            uri="urn:x:svc:media",
            name="Media",
            provided=(Capability.build("urn:x:cap:m", "M", outputs=["http://o.org/x#Stream"]),),
            process=media_process(),
        )
        runtime = ServiceRuntime(profile)
        runtime.on("login", lambda user="guest": f"hello {user}")
        runtime.on("play", lambda title="": f"playing {title}")
        runtime.on("browse", lambda: ["a", "b"])
        runtime.on("logout", lambda: "bye")
        return runtime

    def test_dispatch_with_arguments(self, runtime):
        session = runtime.open_session()
        assert runtime.call(session, "login", user="ada") == "hello ada"
        assert runtime.call(session, "play", title="video1") == "playing video1"

    def test_protocol_enforced_before_dispatch(self, runtime):
        session = runtime.open_session()
        with pytest.raises(ProtocolViolation):
            runtime.call(session, "play", title="x")
        # The failed call must not have advanced the session.
        assert session.state.invocations == []
        assert runtime.call(session, "login") == "hello guest"

    def test_allowed_but_unimplemented_operation(self):
        profile = ServiceProfile(
            uri="urn:x:svc:stub",
            name="Stub",
            provided=(Capability.build("urn:x:cap:s", "S", outputs=["http://o.org/x#Y"]),),
            process=Invoke("ping"),
        )
        runtime = ServiceRuntime(profile)
        session = runtime.open_session()
        with pytest.raises(UnknownOperationError):
            runtime.call(session, "ping")

    def test_unallowed_and_unimplemented_raises_protocol_first(self, runtime):
        session = runtime.open_session()
        with pytest.raises(ProtocolViolation):
            runtime.call(session, "burnDvd")

    def test_sessions_are_independent(self, runtime):
        first = runtime.open_session()
        second = runtime.open_session()
        runtime.call(first, "login")
        # Second session still requires login.
        with pytest.raises(ProtocolViolation):
            runtime.call(second, "play")
        assert len(runtime.sessions) == 2

    def test_full_conversation_end_to_end(self, runtime):
        session = runtime.open_session()
        runtime.call(session, "login")
        runtime.call(session, "browse")
        runtime.call(session, "play", title="movie")
        runtime.call(session, "logout")
        session.close()
        assert session.finished

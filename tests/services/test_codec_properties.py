"""Hypothesis round-trip properties for the service XML codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.profile import Capability, Grounding, ServiceProfile, ServiceRequest
from repro.services.xml_codec import (
    profile_from_xml,
    profile_to_xml,
    request_from_xml,
    request_to_xml,
)

# XML-safe local names (the codec must escape everything else itself; URIs
# in this system come from join_namespace so stay in this alphabet).
_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.",
    min_size=1,
    max_size=12,
)


@st.composite
def concepts(draw):
    onto = draw(st.integers(min_value=0, max_value=5))
    local = draw(_name)
    return f"http://o{onto}.example.org/onto#{local}"


@st.composite
def capabilities(draw, index: int = 0):
    uri = f"urn:x:cap:{draw(_name)}:{index}"
    return Capability.build(
        uri=uri,
        name=draw(_name),
        inputs=draw(st.lists(concepts(), max_size=4)),
        outputs=draw(st.lists(concepts(), max_size=4)),
        properties=draw(st.lists(concepts(), max_size=3)),
        category=draw(st.one_of(st.none(), concepts())),
        includes=tuple(draw(st.lists(st.just("urn:x:cap:other"), max_size=1))),
    )


@st.composite
def profiles(draw):
    count = draw(st.integers(min_value=0, max_value=3))
    provided = tuple(draw(capabilities(index=i)) for i in range(count))
    required_count = draw(st.integers(min_value=0, max_value=2))
    required = tuple(draw(capabilities(index=100 + i)) for i in range(required_count))
    # Deduplicate capability URIs (profile rejects duplicates).
    seen = set()
    unique_provided = []
    for cap in provided:
        if cap.uri not in seen:
            seen.add(cap.uri)
            unique_provided.append(cap)
    unique_required = []
    for cap in required:
        if cap.uri not in seen:
            seen.add(cap.uri)
            unique_required.append(cap)
    return ServiceProfile(
        uri=f"urn:x:svc:{draw(_name)}",
        name=draw(_name),
        provided=tuple(unique_provided),
        required=tuple(unique_required),
        device=draw(_name),
        middleware=draw(_name),
        qos=tuple(draw(st.lists(st.tuples(_name, _name), max_size=3))),
        grounding=Grounding(endpoint=f"http://h/{draw(_name)}", wsdl_uri=""),
    )


@given(profiles())
@settings(max_examples=150, deadline=None)
def test_profile_roundtrip_property(profile):
    restored, annotations = profile_from_xml(profile_to_xml(profile))
    assert restored == profile
    assert not annotations


@given(st.lists(capabilities(), min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_request_roundtrip_property(caps):
    seen = set()
    unique = []
    for index, cap in enumerate(caps):
        if cap.uri not in seen:
            seen.add(cap.uri)
            unique.append(cap)
    request = ServiceRequest(uri="urn:x:req:prop", capabilities=tuple(unique))
    restored, _ = request_from_xml(request_to_xml(request))
    assert restored == request


@given(profiles(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_codes_version_roundtrip_property(profile, version):
    annotations = {concept: f"0.1,0.2;{1};0.1,0.2" for cap in profile.provided for concept in cap.concepts()}
    document = profile_to_xml(profile, annotations=annotations, codes_version=version)
    restored, parsed = profile_from_xml(document)
    assert restored == profile
    assert parsed.version == version
    assert set(parsed.codes) == set(annotations)

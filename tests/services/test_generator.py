"""Tests for the service workload generator."""

import pytest

from repro.core.matching import TaxonomyMatcher
from repro.services.generator import PAPER_FIG2_SHAPE, ServiceWorkload, WorkloadShape
from repro.ontology.generator import OntologyShape


class TestShapes:
    def test_default_shape_matches_paper_setting(self):
        shape = WorkloadShape()
        assert shape.ontology_count == 22  # §5: "22 different ontologies"
        assert shape.capabilities_per_service == 1  # "a single provided capability"

    def test_fig2_shape(self):
        assert PAPER_FIG2_SHAPE.inputs_per_capability == 7
        assert PAPER_FIG2_SHAPE.outputs_per_capability == 3
        assert PAPER_FIG2_SHAPE.ontology_shape.concepts == 99
        assert PAPER_FIG2_SHAPE.ontology_shape.properties == 39


class TestServiceGeneration:
    def test_service_shape(self, small_workload):
        profile = small_workload.make_service(0)
        cap = profile.provided[0]
        assert len(cap.inputs) == small_workload.shape.inputs_per_capability
        assert len(cap.outputs) == small_workload.shape.outputs_per_capability
        assert cap.category is not None

    def test_deterministic_per_index(self, small_workload):
        assert small_workload.make_service(17) == small_workload.make_service(17)

    def test_distinct_indices_distinct_services(self, small_workload):
        assert small_workload.make_service(1) != small_workload.make_service(2)

    def test_make_services_count(self, small_workload):
        services = small_workload.make_services(12)
        assert len(services) == 12
        assert len({p.uri for p in services}) == 12

    def test_concepts_come_from_workload_ontologies(self, small_workload):
        profile = small_workload.make_service(3)
        namespaces = {o.uri for o in small_workload.ontologies}
        for cap in profile.provided:
            assert cap.ontologies() <= namespaces


class TestRequestDerivation:
    def test_matching_request_matches_by_construction(self, small_workload):
        matcher = TaxonomyMatcher(small_workload.taxonomy)
        for index in range(25):
            profile = small_workload.make_service(index)
            request = small_workload.matching_request(profile)
            distance = matcher.semantic_distance(
                profile.provided[0], request.capabilities[0]
            )
            assert distance is not None, profile.uri

    def test_matching_request_deterministic(self, small_workload):
        profile = small_workload.make_service(5)
        assert small_workload.matching_request(profile) == small_workload.matching_request(
            profile
        )

    def test_unrelated_request_rarely_matches(self, small_workload):
        matcher = TaxonomyMatcher(small_workload.taxonomy)
        request = small_workload.unrelated_request(0)
        services = small_workload.make_services(10)
        hits = sum(
            1
            for profile in services
            if matcher.match(profile.provided[0], request.capabilities[0])
        )
        assert hits <= 2  # statistically near zero


class TestWsdlTwins:
    def test_twin_mirrors_capability(self, small_workload):
        profile = small_workload.make_service(4)
        twin = ServiceWorkload.wsdl_twin(profile)
        assert twin.uri == profile.uri
        assert len(twin.operations) == len(profile.provided)
        assert profile.provided[0].name in twin.keywords

    def test_twin_request_conforms_to_twin(self, small_workload):
        profile = small_workload.make_service(4)
        twin = ServiceWorkload.wsdl_twin(profile)
        request = ServiceWorkload.wsdl_request_for(profile)
        assert twin.conforms_to(request)

    def test_twin_request_fails_against_other_services(self, small_workload):
        request = ServiceWorkload.wsdl_request_for(small_workload.make_service(4))
        other = ServiceWorkload.wsdl_twin(small_workload.make_service(5))
        assert not other.conforms_to(request)


class TestValidationErrors:
    def test_concept_pool_too_small(self):
        shape = WorkloadShape(
            ontology_count=1,
            ontology_shape=OntologyShape(concepts=3, properties=1),
            ontologies_per_service=1,
            inputs_per_capability=10,
        )
        workload = ServiceWorkload(shape=shape, seed=0)
        with pytest.raises(ValueError, match="cannot pick"):
            workload.make_service(0)

"""Tests for the service XML codec (profiles, requests, WSDL, codes)."""

import pytest

from repro.services.profile import Capability, Grounding, ServiceProfile, ServiceRequest
from repro.services.wsdl import WsdlDescription, WsdlOperation, WsdlRequest
from repro.services.xml_codec import (
    ServiceSyntaxError,
    profile_from_xml,
    profile_to_xml,
    request_from_xml,
    request_to_xml,
    wsdl_from_xml,
    wsdl_to_xml,
)

NS = "http://repro.example.org/media"


def sample_profile() -> ServiceProfile:
    provided = Capability.build(
        "urn:x:cap:send",
        "SendDigitalStream",
        inputs=[f"{NS}/resources#DigitalResource"],
        outputs=[f"{NS}/resources#Stream"],
        category=f"{NS}/servers#DigitalServer",
        includes=("urn:x:cap:game",),
    )
    required = Capability.build(
        "urn:x:cap:need",
        "NeedClock",
        outputs=[f"{NS}/resources#Title"],
    )
    return ServiceProfile(
        uri="urn:x:svc:ws",
        name="Workstation",
        provided=(provided,),
        required=(required,),
        device="workstation-1",
        middleware="upnp-bridge",
        qos=(("latency", "low"),),
        grounding=Grounding(endpoint="http://10.0.0.2/svc", wsdl_uri="http://10.0.0.2/svc?wsdl"),
    )


class TestProfileRoundtrip:
    def test_roundtrip_complete(self):
        profile = sample_profile()
        restored, annotations = profile_from_xml(profile_to_xml(profile))
        assert restored == profile
        assert not annotations

    def test_codes_roundtrip(self, media_table):
        profile = sample_profile()
        codes = media_table.annotate(profile.provided)
        doc = profile_to_xml(profile, annotations=codes, codes_version=media_table.version)
        restored, annotations = profile_from_xml(doc)
        assert restored == profile
        assert annotations.version == media_table.version
        assert set(annotations.codes) == set(codes)
        resolved = media_table.resolve_annotations(annotations.codes, annotations.version)
        for uri, code in resolved.items():
            assert code == media_table.code(uri)

    def test_unannotated_concepts_carry_no_codes(self):
        profile = sample_profile()
        doc = profile_to_xml(profile, annotations={}, codes_version=7)
        _restored, annotations = profile_from_xml(doc)
        assert annotations.version == 7
        assert annotations.codes == {}


class TestRequestRoundtrip:
    def test_roundtrip(self):
        request = ServiceRequest(
            uri="urn:x:req:1",
            capabilities=(
                Capability.build(
                    "urn:x:cap:r", "GetVideoStream", outputs=[f"{NS}/resources#Stream"]
                ),
            ),
            requester="urn:x:svc:pda",
        )
        restored, _ = request_from_xml(request_to_xml(request))
        assert restored == request


class TestWsdlRoundtrip:
    def test_description_roundtrip(self):
        desc = WsdlDescription(
            uri="urn:x:svc:1",
            port_type="MediaServer",
            operations=(WsdlOperation("get", inputs=("a",), outputs=("b",)),),
            keywords=("media",),
        )
        assert wsdl_from_xml(wsdl_to_xml(desc)) == desc

    def test_request_roundtrip(self):
        request = WsdlRequest(
            uri="urn:x:req:1",
            operations=(WsdlOperation("get", inputs=("a",), outputs=("b",)),),
            keywords=("media",),
        )
        assert wsdl_from_xml(wsdl_to_xml(request)) == request


class TestErrors:
    def test_malformed_profile(self):
        with pytest.raises(ServiceSyntaxError, match="not well-formed"):
            profile_from_xml("<Service")

    def test_wrong_root(self):
        with pytest.raises(ServiceSyntaxError, match="expected <Service>"):
            profile_from_xml("<Request uri='urn:x:r'/>")

    def test_request_wrong_root(self):
        with pytest.raises(ServiceSyntaxError, match="expected <Request>"):
            request_from_xml("<Service uri='urn:x:s' name='s'/>")

    def test_unexpected_element_in_service(self):
        with pytest.raises(ServiceSyntaxError, match="unexpected element"):
            profile_from_xml("<Service uri='urn:x:s' name='s'><Bogus/></Service>")

    def test_unexpected_element_in_capability(self):
        doc = (
            "<Service uri='urn:x:s' name='s'>"
            "<Capability uri='urn:x:c' name='c'><bogus concept='urn:x:x'/></Capability>"
            "</Service>"
        )
        with pytest.raises(ServiceSyntaxError, match="unexpected element"):
            profile_from_xml(doc)

    def test_missing_concept_attribute(self):
        doc = (
            "<Service uri='urn:x:s' name='s'>"
            "<Capability uri='urn:x:c' name='c'><input/></Capability>"
            "</Service>"
        )
        with pytest.raises(ServiceSyntaxError, match="missing required attribute"):
            profile_from_xml(doc)

    def test_wsdl_unknown_root(self):
        with pytest.raises(ServiceSyntaxError, match="expected <Definitions>"):
            wsdl_from_xml("<Nope/>")

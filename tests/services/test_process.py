"""Tests for the OWL-S-style process model and conversation checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.process import (
    AnyOrder,
    Choice,
    Invoke,
    ProcessError,
    Repeat,
    Sequence,
    choice,
    compile_process,
    conversations_compatible,
    example_words,
    sequence,
)


class TestTermValidation:
    def test_empty_operation_rejected(self):
        with pytest.raises(ProcessError):
            Invoke("")

    def test_empty_sequence_rejected(self):
        with pytest.raises(ProcessError):
            Sequence(parts=())

    def test_single_branch_choice_rejected(self):
        with pytest.raises(ProcessError):
            Choice(branches=(Invoke("a"),))

    def test_anyorder_bounds(self):
        with pytest.raises(ProcessError):
            AnyOrder(parts=(Invoke("a"),))
        with pytest.raises(ProcessError):
            AnyOrder(parts=tuple(Invoke(f"op{i}") for i in range(5)))

    def test_alphabet(self):
        term = sequence(Invoke("browse"), choice(Invoke("play"), Invoke("download")))
        assert term.alphabet() == {"browse", "play", "download"}


class TestAcceptance:
    def test_atomic(self):
        nfa = compile_process(Invoke("play"))
        assert nfa.accepts(["play"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["play", "play"])

    def test_sequence(self):
        nfa = compile_process(sequence(Invoke("login"), Invoke("play")))
        assert nfa.accepts(["login", "play"])
        assert not nfa.accepts(["play", "login"])
        assert not nfa.accepts(["login"])

    def test_choice(self):
        nfa = compile_process(choice(Invoke("play"), Invoke("download")))
        assert nfa.accepts(["play"])
        assert nfa.accepts(["download"])
        assert not nfa.accepts(["play", "download"])

    def test_repeat(self):
        nfa = compile_process(Repeat(body=Invoke("next")))
        assert nfa.accepts([])
        assert nfa.accepts(["next"])
        assert nfa.accepts(["next"] * 5)
        assert not nfa.accepts(["prev"])

    def test_any_order(self):
        nfa = compile_process(AnyOrder(parts=(Invoke("a"), Invoke("b"), Invoke("c"))))
        assert nfa.accepts(["a", "b", "c"])
        assert nfa.accepts(["c", "a", "b"])
        assert not nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a", "b", "c", "a"])

    def test_nested(self):
        term = sequence(
            Invoke("login"),
            Repeat(body=choice(Invoke("browse"), Invoke("search"))),
            Invoke("logout"),
        )
        nfa = compile_process(term)
        assert nfa.accepts(["login", "logout"])
        assert nfa.accepts(["login", "browse", "search", "browse", "logout"])
        assert not nfa.accepts(["login", "browse"])

    def test_unknown_symbol_rejects(self):
        nfa = compile_process(Invoke("play"))
        assert not nfa.accepts(["hack"])


class TestCompatibility:
    @pytest.fixture()
    def media_service(self):
        """browse* then (play | download), optionally rate afterwards."""
        return sequence(
            Repeat(body=Invoke("browse")),
            choice(Invoke("play"), Invoke("download")),
            Repeat(body=Invoke("rate")),
        )

    def test_subset_client_compatible(self, media_service):
        client = sequence(Invoke("browse"), Invoke("play"))
        assert conversations_compatible(client, media_service)

    def test_minimal_client_compatible(self, media_service):
        assert conversations_compatible(Invoke("download"), media_service)

    def test_wrong_order_incompatible(self, media_service):
        client = sequence(Invoke("play"), Invoke("browse"))
        assert not conversations_compatible(client, media_service)

    def test_unknown_operation_incompatible(self, media_service):
        client = sequence(Invoke("browse"), Invoke("burnDvd"))
        assert not conversations_compatible(client, media_service)

    def test_client_choice_must_be_fully_covered(self, media_service):
        # One branch fine, the other not -> incompatible.
        client = choice(Invoke("play"), Invoke("burnDvd"))
        assert not conversations_compatible(client, media_service)

    def test_identical_conversations_compatible(self, media_service):
        assert conversations_compatible(media_service, media_service)

    def test_reflexivity_random(self):
        term = sequence(
            Invoke("a"), Repeat(body=Invoke("b")), choice(Invoke("c"), Invoke("d"))
        )
        assert conversations_compatible(term, term)

    def test_repeat_client_against_bounded_service(self):
        service = sequence(Invoke("ping"), Invoke("ping"))
        client = Repeat(body=Invoke("ping"))
        # The client may stop after 0, 1, 3... pings: not contained.
        assert not conversations_compatible(client, service)


class TestExampleWords:
    def test_shortest_first(self):
        term = sequence(Repeat(body=Invoke("a")), Invoke("b"))
        words = example_words(term, limit=3)
        assert words[0] == ("b",)
        assert words[1] == ("a", "b")

    def test_limit_respected(self):
        words = example_words(Repeat(body=Invoke("x")), limit=4)
        assert len(words) == 4


@st.composite
def process_terms(draw, depth: int = 3):
    """Random process terms over a small alphabet."""
    ops = ["a", "b", "c"]
    if depth == 0:
        return Invoke(draw(st.sampled_from(ops)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Invoke(draw(st.sampled_from(ops)))
    if kind == 1:
        parts = draw(st.lists(process_terms(depth=depth - 1), min_size=1, max_size=3))
        return Sequence(parts=tuple(parts))
    if kind == 2:
        branches = draw(st.lists(process_terms(depth=depth - 1), min_size=2, max_size=3))
        return Choice(branches=tuple(branches))
    return Repeat(body=draw(process_terms(depth=depth - 1)))


class TestCompatibilityProperties:
    @given(process_terms())
    @settings(max_examples=60, deadline=None)
    def test_containment_reflexive(self, term):
        assert conversations_compatible(term, term)

    @given(process_terms(), process_terms())
    @settings(max_examples=60, deadline=None)
    def test_containment_agrees_with_sampled_words(self, client, service):
        compatible = conversations_compatible(client, service)
        service_nfa = compile_process(service)
        for word in example_words(client, limit=6, max_length=6):
            if not service_nfa.accepts(word):
                assert not compatible
                break
        else:
            # All sampled client words accepted: containment may or may not
            # hold on longer words, but a verdict of compatible must never
            # contradict the samples.
            pass

    @given(process_terms())
    @settings(max_examples=40, deadline=None)
    def test_sequence_extension_breaks_containment(self, term):
        """Appending a fresh operation produces words the original cannot
        accept."""
        extended = Sequence(parts=(term, Invoke("zz")))
        assert not conversations_compatible(extended, term)

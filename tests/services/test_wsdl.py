"""Tests for the WSDL model and syntactic conformance."""

import pytest

from repro.services.wsdl import WsdlDescription, WsdlOperation, WsdlRequest


def description(**kwargs) -> WsdlDescription:
    defaults = dict(
        uri="urn:x:svc:1",
        port_type="MediaServer",
        operations=(
            WsdlOperation("getStream", inputs=("title",), outputs=("stream",)),
            WsdlOperation("listTitles", inputs=(), outputs=("titles",)),
        ),
        keywords=("media", "stream"),
    )
    defaults.update(kwargs)
    return WsdlDescription(**defaults)


class TestModel:
    def test_duplicate_operation_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate operation"):
            description(
                operations=(
                    WsdlOperation("op", inputs=("a",)),
                    WsdlOperation("op", inputs=("b",)),
                )
            )

    def test_operation_lookup(self):
        desc = description()
        assert desc.operation("getStream").outputs == ("stream",)
        with pytest.raises(KeyError):
            desc.operation("missing")

    def test_signature(self):
        op = WsdlOperation("f", inputs=("a", "b"), outputs=("c",))
        assert op.signature() == ("f", frozenset({"a", "b"}), frozenset({"c"}))

    def test_request_requires_operations(self):
        with pytest.raises(ValueError):
            WsdlRequest(uri="urn:x:r", operations=())


class TestConformance:
    def test_exact_interface_conforms(self):
        desc = description()
        request = WsdlRequest(
            uri="urn:x:r",
            operations=(WsdlOperation("getStream", inputs=("title",), outputs=("stream",)),),
        )
        assert desc.conforms_to(request)

    def test_missing_operation_fails(self):
        request = WsdlRequest(
            uri="urn:x:r", operations=(WsdlOperation("burnDvd", outputs=("disc",)),)
        )
        assert not description().conforms_to(request)

    def test_different_input_parts_fail(self):
        """Syntactic matching is brittle: a renamed part breaks discovery —
        the paper's motivation for semantics."""
        request = WsdlRequest(
            uri="urn:x:r",
            operations=(
                WsdlOperation("getStream", inputs=("videoTitle",), outputs=("stream",)),
            ),
        )
        assert not description().conforms_to(request)

    def test_extra_provided_outputs_ok(self):
        desc = description(
            operations=(
                WsdlOperation("getStream", inputs=("title",), outputs=("stream", "meta")),
            )
        )
        request = WsdlRequest(
            uri="urn:x:r",
            operations=(WsdlOperation("getStream", inputs=("title",), outputs=("stream",)),),
        )
        assert desc.conforms_to(request)

    def test_missing_output_fails(self):
        request = WsdlRequest(
            uri="urn:x:r",
            operations=(
                WsdlOperation("getStream", inputs=("title",), outputs=("stream", "subtitles")),
            ),
        )
        assert not description().conforms_to(request)

    def test_multi_operation_request(self):
        request = WsdlRequest(
            uri="urn:x:r",
            operations=(
                WsdlOperation("getStream", inputs=("title",), outputs=("stream",)),
                WsdlOperation("listTitles", inputs=(), outputs=("titles",)),
            ),
        )
        assert description().conforms_to(request)

"""Tests for the Amigo-S service model."""

import pytest

from repro.services.profile import (
    Capability,
    Grounding,
    ServiceProfile,
    ServiceRequest,
    ontology_of,
)


class TestOntologyOf:
    def test_splits_on_hash(self):
        assert ontology_of("http://x.org/onto#Concept") == "http://x.org/onto"

    def test_no_fragment_returns_whole(self):
        assert ontology_of("http://x.org/onto") == "http://x.org/onto"


class TestCapability:
    def test_category_folded_into_properties(self):
        cap = Capability.build(
            "urn:x:c", "C", category="http://x.org/o#Cat", properties=[]
        )
        assert "http://x.org/o#Cat" in cap.properties
        assert cap.category == "http://x.org/o#Cat"

    def test_concepts_union(self):
        cap = Capability.build(
            "urn:x:c",
            "C",
            inputs=["http://x.org/o#I"],
            outputs=["http://x.org/o#O"],
            category="http://x.org/o#Cat",
        )
        assert cap.concepts() == {
            "http://x.org/o#I",
            "http://x.org/o#O",
            "http://x.org/o#Cat",
        }

    def test_ontologies_footprint(self):
        cap = Capability.build(
            "urn:x:c",
            "C",
            inputs=["http://a.org/o#I"],
            outputs=["http://b.org/o#O"],
        )
        assert cap.ontologies() == {"http://a.org/o", "http://b.org/o"}

    def test_invalid_concept_uri_rejected(self):
        with pytest.raises(ValueError):
            Capability.build("urn:x:c", "C", inputs=["not a uri"])

    def test_immutable(self):
        cap = Capability.build("urn:x:c", "C")
        with pytest.raises(AttributeError):
            cap.name = "other"


class TestServiceProfile:
    def test_duplicate_capability_uris_rejected(self):
        cap = Capability.build("urn:x:c", "C")
        with pytest.raises(ValueError, match="duplicate capability"):
            ServiceProfile(uri="urn:x:s", name="S", provided=(cap, cap))

    def test_capability_lookup(self):
        cap = Capability.build("urn:x:c", "C")
        profile = ServiceProfile(uri="urn:x:s", name="S", provided=(cap,))
        assert profile.capability("urn:x:c") is cap
        with pytest.raises(KeyError):
            profile.capability("urn:x:other")

    def test_ontologies_aggregates_provided_and_required(self):
        provided = Capability.build("urn:x:p", "P", outputs=["http://a.org/o#O"])
        required = Capability.build("urn:x:r", "R", outputs=["http://b.org/o#O"])
        profile = ServiceProfile(
            uri="urn:x:s", name="S", provided=(provided,), required=(required,)
        )
        assert profile.ontologies() == {"http://a.org/o", "http://b.org/o"}

    def test_grounding_defaults(self):
        profile = ServiceProfile(uri="urn:x:s", name="S")
        assert profile.grounding == Grounding()


class TestServiceRequest:
    def test_requires_capabilities(self):
        with pytest.raises(ValueError, match="no capabilities"):
            ServiceRequest(uri="urn:x:r", capabilities=())

    def test_ontologies(self):
        cap = Capability.build("urn:x:c", "C", outputs=["http://a.org/o#O"])
        request = ServiceRequest(uri="urn:x:r", capabilities=(cap,))
        assert request.ontologies() == {"http://a.org/o"}

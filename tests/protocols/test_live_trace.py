"""Distributed tracing acceptance: one query, three processes, one trace.

The tier-1 twin of CI's deployment-smoke tracing assertion (the fig10
topology, §4 forwarding): a client publishes at directory B, a second
client queries backbone directory A, A's Bloom summary admits B, and the
collector must stitch client → A → B under a single trace id with
correct parent/child hop spans.
"""

from __future__ import annotations

import asyncio
import os

from repro.network.election import ElectionConfig
from repro.obs.collector import TelemetryCollector, query_collector
from repro.protocols.deployment import DeploymentConfig
from repro.protocols.live_deploy import DirectoryServer, LoadGenerator


def fast_config(**overrides) -> DeploymentConfig:
    return DeploymentConfig(
        node_count=4,
        protocol="sariadne",
        seed=7,
        election=ElectionConfig(
            advert_interval=0.2,
            directory_timeout=0.15,
            check_interval=0.05,
            reply_window=0.05,
        ),
        **overrides,
    )


def test_cross_directory_query_stitches_three_processes(tmp_path):
    config = fast_config()
    addr_a = f"unix:{os.path.join(str(tmp_path), 'a.sock')}"
    addr_b = f"unix:{os.path.join(str(tmp_path), 'b.sock')}"
    addr_c = f"unix:{os.path.join(str(tmp_path), 'collector.sock')}"
    artifact = tmp_path / "fleet.jsonl"

    async def scenario():
        collector = TelemetryCollector(addr_c, out=str(artifact))
        await collector.start()

        server_a = DirectoryServer(
            config, listen=addr_a, node_id=0, collector=addr_c, force_directory=True
        )
        await server_a.start()
        # B dials A's fabric and promotes outright: a node hearing the
        # backbone's adverts would never self-elect.
        server_b = DirectoryServer(
            config,
            listen=addr_b,
            node_id=2,
            peers={0: addr_a},
            collector=addr_c,
            force_directory=True,
        )
        await server_b.start()
        await server_a.wait_elected(timeout=5.0)
        await server_b.wait_elected(timeout=5.0)

        # Publisher: advertises services 0..2 at B only.
        publisher = LoadGenerator(
            config, connect=addr_b, node_id=1, directory_node_id=2
        )
        await publisher.start()
        await publisher.wait_directory(timeout=5.0)
        assert await publisher.publish(3) == 3
        # B's debounced content-changed summary must reach A, or A's
        # Bloom filter never admits B for forwarding.
        await asyncio.sleep(config.election.advert_interval + 0.8)

        # Querier: asks A for services only B holds (the §4 remote hop).
        querier = LoadGenerator(
            config, connect=addr_a, node_id=3, directory_node_id=0, collector=addr_c
        )
        await querier.start()
        summary = await querier.run(
            services=0, queries=3, query_services=3, settle=0.1
        )

        await querier.close()
        await publisher.close()
        await server_a.close()
        await server_b.close()

        stitched = await query_collector(addr_c, "trace", "widest")
        top = await query_collector(addr_c, "top")
        await collector.close()
        return summary, stitched, top

    summary, stitched, top = asyncio.run(scenario())

    assert summary["answered"] == 3, summary
    # The acceptance criterion: client, backbone directory, and the
    # second directory under ONE trace id.
    assert set(stitched["processes"]) >= {0, 2, 3}, stitched["processes"]
    trace_id = stitched["trace_id"]
    assert trace_id.startswith("q0.")  # rooted at directory A's query id

    # Correct parent/child hop structure: the client's root span owns
    # A's query.handle, which owns B's hop.remote.
    roots = {root["name"]: root for root in stitched["roots"]}
    client_root = roots["client.query"]
    assert client_root["origin_node"] == 3
    handle = next(
        span for span in client_root["children"] if span["name"] == "query.handle"
    )
    assert handle["origin_node"] == 0
    remote = next(
        span for span in handle["children"] if span["name"] == "hop.remote"
    )
    assert remote["origin_node"] == 2
    assert remote["parent_span_id"] == handle["span_id"]

    # Per-stage breakdown sums each process's own span clocks.
    assert stitched["stages"]["query.handle"]["count"] >= 1
    assert stitched["stages"]["hop.remote"]["count"] >= 1

    # The fleet view saw all three shippers.
    assert {"0", "2", "3"} <= set(top["nodes"])
    assert top["nodes"]["0"]["role"] == "directory"
    assert top["nodes"]["3"]["role"] == "loadgen"

    # The artifact is JSONL in the sink format (obs timeline input).
    assert artifact.exists() and artifact.stat().st_size > 0


def test_live_runs_record_timeseries_windows(tmp_path):
    """Satellite: the wall-clock runtime drives TimeSeriesRecorder, so
    ``obs timeline`` works on live runs."""
    config = fast_config()
    address = f"unix:{os.path.join(str(tmp_path), 'serve.sock')}"

    async def scenario():
        server = DirectoryServer(config, listen=address, force_directory=True)
        await server.start()
        assert server.obs.timeseries is not None
        await asyncio.sleep(0.3)
        await server.close()
        server.obs.close()
        return server.obs.timeseries.windows

    windows = asyncio.run(scenario())
    # close() finalizes the trailing partial window, so at least one
    # window exists even for a short-lived process.
    assert windows
    assert windows[-1]["t_end"] > 0.0

"""DeploymentConfig serialization: the shared serve/loadgen/experiments surface."""

from __future__ import annotations

import json

import pytest

from repro.network.election import ElectionConfig
from repro.network.topology import Bounds
from repro.protocols.deployment import CONFIG_SCHEMA_VERSION, DeploymentConfig


def test_round_trip_identity():
    config = DeploymentConfig(
        node_count=12,
        protocol="ariadne",
        bounds=Bounds(250.0, 100.0),
        radio_range=80.0,
        grid=False,
        directory_capable_fraction=0.25,
        infrastructure_nodes=3,
        forward_window=0.5,
        election=ElectionConfig(advert_interval=1.5, directory_timeout=4.0),
        seed=99,
        directory_shards=4,
    )
    assert DeploymentConfig.from_dict(config.to_dict()) == config


def test_to_dict_is_versioned_and_json_expressible():
    data = DeploymentConfig(node_count=2).to_dict()
    assert data["config_version"] == CONFIG_SCHEMA_VERSION
    assert json.loads(json.dumps(data)) == data  # no exotic values
    assert data["bounds"] == {"width": 500.0, "height": 500.0}


def test_partial_dict_keeps_defaults():
    config = DeploymentConfig.from_dict({"node_count": 5, "seed": 3})
    assert config.node_count == 5
    assert config.seed == 3
    assert config.protocol == "sariadne"
    assert config.election == ElectionConfig()
    assert config.bounds == Bounds(500.0, 500.0)


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown DeploymentConfig keys"):
        DeploymentConfig.from_dict({"node_cuont": 5})


def test_wrong_version_rejected():
    with pytest.raises(ValueError, match="config_version"):
        DeploymentConfig.from_dict({"config_version": CONFIG_SCHEMA_VERSION + 1})


def test_load_toml_with_deployment_table(tmp_path):
    path = tmp_path / "c.toml"
    path.write_text(
        "[deployment]\n"
        "node_count = 4\n"
        "protocol = \"sariadne\"\n"
        "directory_shards = 2\n"
        "[deployment.election]\n"
        "advert_interval = 0.5\n"
    )
    config = DeploymentConfig.load(path)
    assert config.node_count == 4
    assert config.directory_shards == 2
    assert config.election.advert_interval == 0.5
    # Unnamed election fields keep their defaults too.
    assert config.election.directory_timeout == ElectionConfig().directory_timeout


def test_load_toml_top_level_keys(tmp_path):
    path = tmp_path / "c.toml"
    path.write_text("node_count = 3\nseed = 11\n")
    config = DeploymentConfig.load(path)
    assert (config.node_count, config.seed) == (3, 11)


def test_load_json(tmp_path):
    path = tmp_path / "c.json"
    original = DeploymentConfig(node_count=6, bounds=Bounds(10.0, 20.0))
    path.write_text(json.dumps(original.to_dict()))
    assert DeploymentConfig.load(path) == original


def test_load_rejects_other_extensions(tmp_path):
    path = tmp_path / "c.yaml"
    path.write_text("node_count: 3\n")
    with pytest.raises(ValueError, match=".toml or .json"):
        DeploymentConfig.load(path)


def test_experiments_share_the_config_surface(tmp_path):
    """chaos_recovery/shard_failover read the same files serve/loadgen do."""
    from repro.experiments import _resolve_deployment_config

    default = DeploymentConfig(node_count=3)
    assert _resolve_deployment_config(None, lambda: default) is default
    ready = DeploymentConfig(node_count=4)
    assert _resolve_deployment_config(ready, lambda: default) is ready
    path = tmp_path / "c.toml"
    path.write_text("[deployment]\nnode_count = 6\n")
    assert _resolve_deployment_config(path, lambda: default).node_count == 6


def test_committed_smoke_config_loads():
    """The config file the CI deployment-smoke job uses must stay valid."""
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[2]
    config = DeploymentConfig.load(repo / "configs" / "deployment_smoke.toml")
    assert config.node_count == 2
    assert config.directory_shards == 2
    assert config.election.advert_interval < 1.0  # fast CI timings

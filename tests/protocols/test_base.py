"""Tests for the shared protocol machinery (backbone, forwarding)."""

import pytest

from repro.network.messages import (
    DirectoryAnnounce,
    PublishService,
    QueryRequest,
    SummaryRequest,
)
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position
from repro.protocols.base import (
    ClientAgentBase,
    DirectoryAgentBase,
    QueryOutcome,
    QueryTicket,
)
from repro.util.bloom import BloomFilter


class ToyDirectory(DirectoryAgentBase):
    """A trivial directory: stores documents verbatim, answers by substring,
    summarizes by document text, admits when the probe text is present."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.documents: list[str] = []

    def local_publish(self, document: str) -> str:
        self.documents.append(document)
        return document  # the document text doubles as its service URI

    def local_withdraw(self, service_uri: str) -> None:
        self.documents = [d for d in self.documents if service_uri not in d]

    def local_query(self, document: str):
        return [(doc, doc, 0) for doc in self.documents if document in doc]

    def build_summary(self) -> BloomFilter:
        bloom = BloomFilter(self.summary_bits, self.summary_hashes)
        for doc in self.documents:
            bloom.add(doc)
        return bloom

    def summary_admits(self, summary: BloomFilter, document: str) -> bool:
        # Toy rule: peer may hold docs equal to the probe.
        return document in summary


def mesh(directory_count=2, client_count=1):
    """Full mesh: directories + clients all in range."""
    sim = Simulator()
    network = Network(sim, bounds=Bounds(100, 100), radio_range=500.0)
    directories = {}
    clients = {}
    nid = 0
    for _ in range(directory_count):
        node = network.add_node(nid, Position(10.0 * nid, 10.0))
        directories[nid] = node.add_agent(ToyDirectory(forward_window=0.5))
        nid += 1
    first_directory = 0
    for _ in range(client_count):
        node = network.add_node(nid, Position(10.0 * nid, 20.0))
        clients[nid] = node.add_agent(ClientAgentBase(lambda: first_directory))
        nid += 1
    network.start()
    for agent in directories.values():
        agent.join_backbone()
    sim.run(until=5.0)
    return sim, network, directories, clients


class TestBackbone:
    def test_announce_builds_peer_sets(self):
        _sim, _network, directories, _ = mesh(directory_count=3)
        for nid, agent in directories.items():
            assert agent.known_peers == set(directories) - {nid}

    def test_summaries_exchanged_on_join(self):
        _sim, _network, directories, _ = mesh(directory_count=2)
        assert 1 in directories[0].peer_summaries
        assert 0 in directories[1].peer_summaries

    def test_summary_request_answered(self):
        sim, network, directories, _ = mesh(directory_count=2)
        directories[1].documents.append("fresh")
        directories[1].peer_summaries.clear()
        network.nodes[0].unicast(1, SummaryRequest(requester_directory=0))
        sim.run(until=sim.now + 2.0)
        assert 0 in directories[0].peer_summaries or directories[0].peer_summaries


class TestPublishWithdraw:
    def test_publish_reaches_directory(self):
        sim, _network, directories, clients = mesh()
        client = next(iter(clients.values()))
        assert client.publish("service-alpha")
        sim.run(until=sim.now + 2.0)
        assert "service-alpha" in directories[0].documents

    def test_withdraw(self):
        sim, _network, directories, clients = mesh()
        client = next(iter(clients.values()))
        client.publish("service-alpha")
        sim.run(until=sim.now + 2.0)
        client.withdraw("service-alpha")
        sim.run(until=sim.now + 2.0)
        assert directories[0].documents == []

    def test_summary_repushed_after_publish(self):
        sim, _network, directories, clients = mesh()
        client = next(iter(clients.values()))
        client.publish("service-alpha")
        sim.run(until=sim.now + 3.0)
        summary_at_peer = directories[1].peer_summaries[0]
        assert "service-alpha" in summary_at_peer


class TestQueryFlow:
    def test_local_hit_answered_immediately(self):
        sim, _network, directories, clients = mesh()
        client = next(iter(clients.values()))
        client.publish("service-alpha")
        sim.run(until=sim.now + 3.0)
        query_id = client.query("service-alpha")
        sim.run(until=sim.now + 3.0)
        latency, results = client.responses[query_id]
        assert results and results[0][0] == "service-alpha"
        assert latency < 0.5  # no forwarding round needed

    def test_remote_hit_via_forwarding(self):
        sim, network, directories, clients = mesh(directory_count=2)
        directories[1].documents.append("service-remote")
        directories[1]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        client = next(iter(clients.values()))
        query_id = client.query("service-remote")
        sim.run(until=sim.now + 5.0)
        latency, results = client.responses[query_id]
        assert results and results[0][0] == "service-remote"
        assert directories[0].queries_forwarded == 1

    def test_miss_returns_empty(self):
        sim, _network, _directories, clients = mesh()
        client = next(iter(clients.values()))
        query_id = client.query("service-nonexistent")
        sim.run(until=sim.now + 5.0)
        _latency, results = client.responses[query_id]
        assert results == ()

    def test_stale_summary_filters_forwarding(self):
        sim, _network, directories, clients = mesh(directory_count=2)
        # Peer 1 holds nothing; its (empty) summary must filter forwarding.
        client = next(iter(clients.values()))
        client.query("service-unknown")
        sim.run(until=sim.now + 5.0)
        assert directories[0].queries_forwarded == 0

    def test_duplicate_results_deduplicated(self):
        sim, _network, directories, clients = mesh(directory_count=2)
        directories[0].documents.append("service-alpha")
        directories[1].documents.append("service-alpha")
        directories[0]._mark_content_changed()
        directories[1]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        client = next(iter(clients.values()))
        query_id = client.query("service-alpha")
        sim.run(until=sim.now + 5.0)
        _latency, results = client.responses[query_id]
        assert len(results) == 1


class TestClientWithoutDirectory:
    def test_publish_fails_gracefully(self):
        sim = Simulator()
        network = Network(sim)
        node = network.add_node(0, Position(0, 0))
        client = node.add_agent(ClientAgentBase(lambda: None))
        network.start()
        assert not client.publish("doc")
        ticket = client.query("doc")
        assert not ticket
        assert ticket.outcome is QueryOutcome.NO_DIRECTORY


class TestQueryTicketOutcomes:
    def test_answered_query_resolves_ticket(self):
        sim, _network, directories, clients = mesh()
        client = next(iter(clients.values()))
        client.publish("service-alpha")
        sim.run(until=sim.now + 3.0)
        ticket = client.query("service-alpha")
        assert ticket  # dispatched successfully
        assert ticket.outcome is QueryOutcome.PENDING
        sim.run(until=sim.now + 3.0)
        assert ticket.outcome is QueryOutcome.ANSWERED
        # Backwards-compatible lookup: tickets hash/compare as their id.
        assert ticket in client.responses
        assert client.responses[ticket] == client.responses[ticket.query_id]

    def test_send_failure_distinguished_from_no_directory(self):
        sim = Simulator()
        network = Network(sim, bounds=Bounds(1000, 1000), radio_range=50.0)
        node = network.add_node(0, Position(0, 0))
        # The known directory sits out of radio range: the unicast has no
        # route and fails immediately.
        network.add_node(7, Position(900, 900))
        client = node.add_agent(ClientAgentBase(lambda: 7))
        network.start()
        ticket = client.query("doc")
        assert not ticket
        assert ticket.outcome is QueryOutcome.SEND_FAILED

    def test_exhausted_after_retries_without_answer(self):
        sim, network, directories, clients = mesh()
        client = next(iter(clients.values()))
        # Sever the link after dispatch by making the directory drop
        # queries: it never concludes, so the client's retry horizon
        # passes without a response.
        directories[0].on_message = lambda envelope: None
        ticket = client.query("service-gone", retries=2, retry_timeout=1.0)
        assert ticket.outcome is QueryOutcome.PENDING
        sim.run(until=sim.now + 60.0)
        assert ticket.outcome is QueryOutcome.EXHAUSTED
        assert ticket not in client.responses

    def test_ticket_equality_and_repr(self):
        answered = QueryTicket(3, QueryOutcome.ANSWERED)
        assert answered == QueryTicket(3, QueryOutcome.PENDING)
        assert answered == 3
        assert answered != QueryTicket(4, QueryOutcome.ANSWERED)
        assert hash(answered) == hash(3)
        assert "3" in repr(answered)


class TestReactiveSummaryExchange:
    """§4: summaries are re-requested when false positives exceed the
    threshold."""

    def _saturate(self, directories, clients, sim):
        """Make peer 1's summary admit everything, then hammer it with
        queries it cannot answer."""
        client = next(iter(clients.values()))
        origin = directories[0]
        origin.false_positive_min_samples = 3
        # A summary whose bits are all set admits any probe.
        from repro.util.bloom import BloomFilter

        saturated = BloomFilter(origin.summary_bits, origin.summary_hashes)
        saturated._bits = (1 << saturated.m) - 1
        origin.peer_summaries[1] = saturated
        for index in range(6):
            client.query(f"service-missing-{index}")
            sim.run(until=sim.now + 3.0)
        return origin

    def test_refresh_requested_after_false_positives(self):
        sim, _network, directories, clients = mesh(directory_count=2)
        origin = self._saturate(directories, clients, sim)
        assert origin.summary_refreshes_requested >= 1
        # The refreshed summary no longer admits the missing documents.
        refreshed = origin.peer_summaries[1]
        assert "service-missing-99" not in refreshed

    def test_counters_reset_after_refresh(self):
        sim, _network, directories, clients = mesh(directory_count=2)
        origin = self._saturate(directories, clients, sim)
        assert origin._peer_empty.get(1, 0) <= origin.false_positive_min_samples


class TestForwardRanking:
    """§4: forwarding prefers near, well-charged directories and honours
    the peer cap."""

    def test_cap_limits_forwarding(self):
        sim, _network, directories, clients = mesh(directory_count=4)
        origin = directories[0]
        origin.max_forward_peers = 1
        # Every peer holds the document so all summaries admit it.
        for nid in (1, 2, 3):
            directories[nid].documents.append("service-x")
            directories[nid]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        client = next(iter(clients.values()))
        query_id = client.query("service-x")
        sim.run(until=sim.now + 5.0)
        assert origin.queries_forwarded == 1
        _latency, results = client.responses[query_id]
        assert results  # the single chosen peer answered

    def test_ranking_prefers_nearer_peer(self):
        from repro.network.node import Network
        from repro.network.simulator import Simulator
        from repro.network.topology import Bounds, Position

        sim = Simulator()
        network = Network(sim, bounds=Bounds(1000, 100), radio_range=120.0)
        # A line: origin(0) - near(1) - far(2); far is 2 hops away.
        agents = {}
        for nid, x in [(0, 0.0), (1, 100.0), (2, 200.0)]:
            node = network.add_node(nid, Position(x, 50.0))
            agents[nid] = node.add_agent(ToyDirectory(forward_window=0.5))
        network.start()
        for agent in agents.values():
            agent.join_backbone()
        sim.run(until=5.0)
        for nid in (1, 2):
            agents[nid].documents.append("service-y")
            agents[nid]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        ranked = agents[0]._rank_forward_peers("service-y")
        assert ranked == [1, 2]

    def test_ranking_prefers_battery_at_equal_distance(self):
        sim, network, directories, _clients = mesh(directory_count=3)
        network.nodes[1].battery = 0.2
        network.nodes[2].battery = 0.9
        for nid in (1, 2):
            directories[nid].documents.append("service-z")
            directories[nid]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        ranked = directories[0]._rank_forward_peers("service-z")
        assert ranked == [2, 1]

"""Failure injection: discovery over a lossy wireless medium.

The §4 protocol must degrade gracefully when frames are lost: flooding is
naturally redundant, unicast queries recover via client retries.
"""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Position
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


class TestLossModel:
    def test_loss_rate_validated(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=-0.1)

    def test_lossless_network_drops_nothing(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0, loss_rate=0.0)
        network.add_node(0, Position(0, 0))
        network.add_node(1, Position(50, 0))
        from repro.network.messages import PublishService

        for _ in range(50):
            network.nodes[0].unicast(1, PublishService("<x/>"))
        sim.run()
        assert network.stats.drops_lost == 0
        assert network.stats.deliveries == 50

    def test_lossy_unicast_drops_some(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0, loss_rate=0.3, seed=5)
        network.add_node(0, Position(0, 0))
        network.add_node(1, Position(50, 0))
        from repro.network.messages import PublishService

        for _ in range(200):
            network.nodes[0].unicast(1, PublishService("<x/>"))
        sim.run()
        assert network.stats.drops_lost > 20
        assert network.stats.deliveries < 200
        assert network.stats.deliveries + network.stats.drops_lost == 200

    def test_lossy_flood_still_spreads(self):
        """Flooding redundancy: with a dense mesh, moderate loss rarely
        stops propagation entirely."""
        from repro.network.messages import PublishService
        from repro.network.node import ProtocolAgent

        received = set()

        class Sink(ProtocolAgent):
            def __init__(self, nid):
                super().__init__()
                self.nid = nid

            def on_message(self, envelope):
                received.add(self.nid)

        sim = Simulator()
        network = Network(sim, radio_range=300.0, loss_rate=0.2, seed=1)
        for i in range(10):
            node = network.add_node(i, Position(30.0 * i, 0))
            node.add_agent(Sink(i))
        network.start()
        network.nodes[0].broadcast(PublishService("<x/>"), ttl=5)
        sim.run()
        assert len(received) >= 5


class TestDiscoveryUnderLoss:
    @pytest.fixture(scope="class")
    def table(self, small_workload):
        return CodeTable(OntologyRegistry(small_workload.ontologies))

    def test_retries_recover_lost_queries(self, small_workload, table):
        config = DeploymentConfig(
            node_count=25, protocol="sariadne", election=FAST_ELECTION, seed=6
        )
        deployment = Deployment(config, table=table)
        deployment.run_until_directories(minimum=1)
        # Publish while the network is still reliable.
        profile = small_workload.make_service(1)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(4, document, service_uri=profile.uri)
        # Now make the medium lossy and query with retries.  Loss applies
        # per hop, so multi-hop request/response legs compound it.
        deployment.network.loss_rate = 0.15
        request = small_workload.matching_request(profile)
        request_document = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        client = deployment.clients[20]
        answered = 0
        for _ in range(10):
            ticket = client.query(request_document, retries=8, retry_timeout=2.0)
            assert ticket
            deployment.sim.run(until=deployment.sim.now + 25.0)
            if ticket in client.responses:
                answered += 1
        # Single attempts would regularly vanish; retries recover them.
        assert answered >= 9, (answered, client.retries_sent)
        assert client.retries_sent > 0

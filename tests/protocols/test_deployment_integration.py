"""End-to-end integration tests: full §4 scenarios over the simulator.

These are the slowest tests in the suite; they exercise election,
backbone formation, publication, summary exchange and multi-directory
query forwarding for both protocols.
"""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.topology import RandomWaypoint
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.generator import ServiceWorkload
from repro.services.xml_codec import profile_to_xml, request_to_xml, wsdl_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


@pytest.fixture(scope="module")
def table(small_workload):
    return CodeTable(OntologyRegistry(small_workload.ontologies))


def semantic_deployment(table, **overrides):
    config = DeploymentConfig(
        node_count=overrides.pop("node_count", 25),
        protocol="sariadne",
        election=FAST_ELECTION,
        seed=overrides.pop("seed", 3),
        **overrides,
    )
    return Deployment(config, table=table)


class TestSemanticDeployment:
    def test_discovery_across_directories(self, small_workload, table):
        deployment = semantic_deployment(table)
        assert deployment.run_until_directories(minimum=2) >= 2
        services = small_workload.make_services(8)
        for index, profile in enumerate(services):
            document = profile_to_xml(
                profile,
                annotations=table.annotate(profile.provided),
                codes_version=table.version,
            )
            assert deployment.publish_from(index % 25, document)
        request = small_workload.matching_request(services[3])
        document = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(20, document)
        assert response is not None
        latency, results = response
        assert any(row[0] == services[3].uri for row in results)
        assert latency < 5.0

    def test_coverage_reaches_all_nodes(self, table):
        deployment = semantic_deployment(table)
        deployment.run_until_directories(minimum=1)
        deployment.sim.run(until=deployment.sim.now + 60.0)
        assert deployment.coverage() == 1.0

    def test_withdrawn_service_not_found(self, small_workload, table):
        deployment = semantic_deployment(table)
        deployment.run_until_directories(minimum=1)
        profile = small_workload.make_service(0)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(5, document, service_uri=profile.uri)
        deployment.clients[5].withdraw(profile.uri)
        deployment.sim.run(until=deployment.sim.now + 3.0)
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(5, request_doc)
        assert response is not None
        _latency, results = response
        assert not any(row[0] == profile.uri for row in results)

    def test_mobile_deployment_still_discovers(self, small_workload, table):
        config = DeploymentConfig(
            node_count=20,
            protocol="sariadne",
            election=FAST_ELECTION,
            seed=5,
            radio_range=220.0,
        )
        deployment = Deployment(
            config,
            table=table,
            mobility=RandomWaypoint(min_speed=0.5, max_speed=1.5, pause_time=10.0),
        )
        deployment.run_until_directories(minimum=1)
        profile = small_workload.make_service(2)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(3, document)
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(7, request_doc, settle=10.0)
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)


class TestSyntacticDeployment:
    def test_discovery_with_exact_interfaces(self, small_workload):
        config = DeploymentConfig(
            node_count=25, protocol="ariadne", election=FAST_ELECTION, seed=3
        )
        deployment = Deployment(config)
        assert deployment.run_until_directories(minimum=2) >= 2
        services = small_workload.make_services(8)
        for index, profile in enumerate(services):
            document = wsdl_to_xml(ServiceWorkload.wsdl_twin(profile))
            assert deployment.publish_from(index % 25, document)
        request = ServiceWorkload.wsdl_request_for(services[3])
        response = deployment.query_from(20, wsdl_to_xml(request))
        assert response is not None
        _latency, results = response
        assert any(row[0] == services[3].uri for row in results)

    def test_synonym_request_finds_nothing(self, small_workload):
        """The openness failure the paper motivates with: a client using a
        different interface vocabulary discovers nothing syntactically."""
        from repro.services.wsdl import WsdlOperation, WsdlRequest

        config = DeploymentConfig(
            node_count=25, protocol="ariadne", election=FAST_ELECTION, seed=4
        )
        deployment = Deployment(config)
        deployment.run_until_directories(minimum=1)
        profile = small_workload.make_service(1)
        deployment.publish_from(2, wsdl_to_xml(ServiceWorkload.wsdl_twin(profile)))
        original = ServiceWorkload.wsdl_request_for(profile)
        renamed = WsdlRequest(
            uri=original.uri,
            operations=tuple(
                WsdlOperation("fetch" + op.name, op.inputs, op.outputs)
                for op in original.operations
            ),
            keywords=original.keywords,
        )
        response = deployment.query_from(8, wsdl_to_xml(renamed))
        assert response is not None
        _latency, results = response
        assert results == ()


class TestDeploymentConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            DeploymentConfig(protocol="gossip")

    def test_semantic_requires_table(self):
        with pytest.raises(ValueError, match="CodeTable"):
            Deployment(DeploymentConfig(protocol="sariadne"))

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            DeploymentConfig(node_count=1)


class TestMobilityReassociation:
    def test_moving_node_changes_directory(self, table):
        """A node drifting across the area re-associates with whichever
        directory's adverts now reach it."""
        from repro.network.topology import Position

        config = DeploymentConfig(
            node_count=25,
            protocol="sariadne",
            election=FAST_ELECTION,
            seed=3,
            directory_capable_fraction=1.0,
        )
        deployment = Deployment(config, table=table)
        deployment.run_until_directories(minimum=2)
        deployment.sim.run(until=deployment.sim.now + 30.0)
        mover = 24  # grid corner
        first = deployment.clients[mover]._resolve_directory(mover)
        assert first is not None
        # Teleport the node to the opposite corner and let adverts re-run.
        deployment.network.nodes[mover].position = Position(5.0, 5.0)
        deployment.elections[mover].current_directory = None
        deployment.sim.run(until=deployment.sim.now + 60.0)
        second = deployment.clients[mover]._resolve_directory(mover)
        assert second is not None
        # Either a different directory or, at minimum, still resolvable.
        origin = deployment.network.nodes[mover]
        second_pos = deployment.network.nodes[second].position
        assert origin.position.distance_to(second_pos) < 400.0

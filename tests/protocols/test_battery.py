"""Tests for the energy model and battery-driven directory replacement."""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.messages import PublishService
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Position
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


class TestDrainModel:
    def test_disabled_by_default(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0)
        a = network.add_node(0, Position(0, 0))
        network.add_node(1, Position(50, 0))
        for _ in range(100):
            a.unicast(1, PublishService("<x/>" * 100))
        sim.run()
        assert a.battery == 1.0

    def test_sender_and_receiver_drain(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0)
        network.battery_cost_per_kb = 0.01
        a = network.add_node(0, Position(0, 0))
        b = network.add_node(1, Position(50, 0))
        for _ in range(50):
            a.unicast(1, PublishService("x" * 1024))
        sim.run()
        assert a.battery < 1.0
        assert b.battery < 1.0

    def test_battery_floors_at_zero(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0)
        network.battery_cost_per_kb = 1.0
        a = network.add_node(0, Position(0, 0))
        network.add_node(1, Position(50, 0))
        for _ in range(10):
            a.unicast(1, PublishService("x" * 4096))
        sim.run()
        assert a.battery == 0.0

    def test_flood_drains_participants(self):
        sim = Simulator()
        network = Network(sim, radio_range=200.0)
        network.battery_cost_per_kb = 0.05
        nodes = [network.add_node(i, Position(50.0 * i, 0)) for i in range(4)]
        network.start()
        nodes[0].broadcast(PublishService("x" * 2048), ttl=4)
        sim.run()
        assert all(node.battery < 1.0 for node in nodes)


class TestBatteryManagedDeployment:
    def test_low_battery_directory_replaced(self, small_workload):
        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(
                node_count=25,
                protocol="sariadne",
                election=FAST_ELECTION,
                seed=3,
                directory_capable_fraction=1.0,
            ),
            table=table,
        )
        deployment.run_until_directories(minimum=1)
        deployment.enable_battery_management(threshold=0.3, check_interval=5.0)
        # Publish some content to one directory, then drain it manually.
        profile = small_workload.make_service(0)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(5, document, service_uri=profile.uri)
        victim = deployment.directory_ids()[0]
        held = len(deployment.directory_agents[victim].cached_documents())
        deployment.network.nodes[victim].battery = 0.05
        deployment.sim.run(until=deployment.sim.now + 20.0)
        # The drained node no longer serves; its content moved on.
        assert victim not in deployment.directory_agents
        if held:
            moved = any(
                len(agent.cached_documents()) >= held
                for agent in deployment.directory_agents.values()
            )
            assert moved
        # Discovery still works end to end.
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(9, request_doc)
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)

    def test_no_capable_successor_keeps_serving(self, small_workload):
        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(
                node_count=10,
                protocol="sariadne",
                election=FAST_ELECTION,
                seed=4,
                radio_range=400.0,
                directory_capable_fraction=1.0,
            ),
            table=table,
        )
        deployment.run_until_directories(minimum=1)
        deployment.enable_battery_management(threshold=0.5, check_interval=5.0)
        # Drain EVERYONE below the takeover threshold.
        for node in deployment.network.nodes.values():
            node.battery = 0.1
        directories_before = set(deployment.directory_ids())
        deployment.sim.run(until=deployment.sim.now + 20.0)
        # Nobody qualified as successor: the directories keep serving.
        assert set(deployment.directory_ids()) == directories_before


class TestSimulatorReentrancy:
    def test_run_inside_callback_rejected(self):
        sim = Simulator()

        failures = []

        def bad_callback():
            try:
                sim.run(until=sim.now + 1.0)
            except RuntimeError as exc:
                failures.append(str(exc))

        sim.schedule(1.0, bad_callback)
        sim.run()
        assert failures and "re-entrantly" in failures[0]

"""In-process serve + loadgen: the tier-1 twin of the CI smoke job.

Runs a :class:`DirectoryServer` and a :class:`LoadGenerator` in one
event loop over a unix socket — real election, real wire frames, real
latency histograms — and checks the whole closed loop: election →
advert discovery → publish → answered queries → metrics scrape → BENCH
report.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.network.election import ElectionConfig
from repro.protocols.deployment import DeploymentConfig
from repro.protocols.live_deploy import (
    DirectoryServer,
    LoadGenerator,
    annotated_profile_doc,
    annotated_request_doc,
    build_catalog,
    write_bench_report,
)


def fast_config(**overrides) -> DeploymentConfig:
    return DeploymentConfig(
        node_count=2,
        protocol="sariadne",
        seed=7,
        election=ElectionConfig(
            advert_interval=0.2,
            directory_timeout=0.15,
            check_interval=0.05,
            reply_window=0.05,
        ),
        **overrides,
    )


def test_build_catalog_is_seed_deterministic():
    """Server and client must derive interchangeable codes from the seed."""
    config = fast_config()
    workload_a, table_a = build_catalog(config)
    workload_b, table_b = build_catalog(config)
    assert table_a.version == table_b.version
    profile_a, doc_a = annotated_profile_doc(workload_a, table_a, 0)
    profile_b, doc_b = annotated_profile_doc(workload_b, table_b, 0)
    assert profile_a.uri == profile_b.uri
    assert doc_a == doc_b
    assert annotated_request_doc(workload_a, table_a, 2) == annotated_request_doc(
        workload_b, table_b, 2
    )


def test_serve_loadgen_closed_loop(tmp_path):
    """Election, publish, queries, scrape, and the BENCH report."""
    config = fast_config(directory_shards=2)
    address = f"unix:{os.path.join(str(tmp_path), 'serve.sock')}"
    metrics = f"unix:{os.path.join(str(tmp_path), 'metrics.sock')}"

    async def scenario():
        server = DirectoryServer(config, listen=address, metrics_listen=metrics)
        await server.start()
        await server.wait_elected(timeout=10.0)
        assert server.election.is_directory
        assert server.directory is not None
        assert server.directory.directory.shard_count == 2

        loadgen = LoadGenerator(config, connect=address)
        await loadgen.start()
        summary = await loadgen.run(services=3, queries=6, settle=0.2)

        # Scrape the live metrics endpoint like CI's curl would.
        reader, writer = await asyncio.open_unix_connection(
            os.path.join(str(tmp_path), "metrics.sock")
        )
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        scrape = await reader.read()
        writer.close()

        await loadgen.close()
        await server.close()
        return summary, scrape.decode("utf-8")

    summary, scrape = asyncio.run(scenario())
    assert summary["directory"] == 0
    assert summary["published"] == 3
    assert summary["answered"] == 6
    assert summary["outcomes"] == {"answered": 6}
    assert summary["qps"] > 0
    assert summary["latency_p50_ms"] is not None
    assert summary["latency_p99_ms"] >= summary["latency_p50_ms"]

    assert scrape.startswith("HTTP/1.1 200 OK")
    body = scrape.split("\r\n\r\n", 1)[1]
    assert "# EOF" in body
    assert "dir_publishes_total" in body

    out = tmp_path / "BENCH_deployment_smoke.json"
    write_bench_report(summary, config, out)
    report = json.loads(out.read_text())
    assert report["benchmark"] == "deployment_smoke"
    names = {metric["name"] for metric in report["metrics"]}
    assert {"qps", "answered", "latency_p50_ms", "latency_p99_ms"} <= names
    assert report["config"]["seed"] == config.seed
    assert report["config"]["queries"] == 6
    assert "manifest" in report


async def _scrape(path: str) -> str:
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.decode("utf-8")


class TestMetricsListener:
    def test_concurrent_scrapes_all_answered(self, tmp_path):
        config = fast_config()
        address = f"unix:{os.path.join(str(tmp_path), 'serve.sock')}"
        metrics_path = os.path.join(str(tmp_path), "metrics.sock")

        async def scenario():
            server = DirectoryServer(
                config,
                listen=address,
                metrics_listen=f"unix:{metrics_path}",
                force_directory=True,
            )
            await server.start()
            try:
                return await asyncio.gather(*(_scrape(metrics_path) for _ in range(8)))
            finally:
                await server.close()

        scrapes = asyncio.run(scenario())
        assert len(scrapes) == 8
        for scrape in scrapes:
            assert scrape.startswith("HTTP/1.1 200 OK")
            assert scrape.rstrip().endswith("# EOF")

    def test_bind_failure_surfaces_not_hangs(self, tmp_path):
        """A metrics address that is already taken: start() raises instead
        of serving nothing.  TCP, because asyncio replaces existing unix
        socket paths rather than failing the bind."""
        config = fast_config()

        async def scenario():
            squatter = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = squatter.sockets[0].getsockname()[1]
            server = DirectoryServer(
                config,
                listen=f"unix:{os.path.join(str(tmp_path), 'serve.sock')}",
                metrics_listen=f"tcp:127.0.0.1:{port}",
            )
            try:
                with pytest.raises(OSError):
                    await server.start()
            finally:
                await server.close()
                squatter.close()
                await squatter.wait_closed()

        asyncio.run(scenario())

    def test_scrape_after_shutdown_is_refused(self, tmp_path):
        """Once close() returns, the listener is gone — a scrape fails
        fast instead of hanging on a half-torn-down server."""
        config = fast_config()
        address = f"unix:{os.path.join(str(tmp_path), 'serve.sock')}"
        metrics_path = os.path.join(str(tmp_path), "metrics.sock")

        async def scenario():
            server = DirectoryServer(
                config, listen=address, metrics_listen=f"unix:{metrics_path}"
            )
            await server.start()
            assert (await _scrape(metrics_path)).startswith("HTTP/1.1 200 OK")
            await server.close()
            with pytest.raises((ConnectionError, FileNotFoundError, OSError)):
                await _scrape(metrics_path)

        asyncio.run(scenario())


def test_loadgen_times_out_without_server(tmp_path):
    config = fast_config()
    nowhere = f"unix:{os.path.join(str(tmp_path), 'absent.sock')}"

    async def scenario():
        loadgen = LoadGenerator(config, connect=nowhere)
        await loadgen.start()
        with pytest.raises(TimeoutError):
            await loadgen.wait_directory(timeout=0.4)
        await loadgen.close()

    asyncio.run(scenario())

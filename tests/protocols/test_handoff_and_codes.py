"""Tests for directory handoff (§5 Fig. 7 scenario) and the §3.2
stale-code refresh protocol, plus hybrid wired/wireless routing."""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.messages import PublishService
from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


@pytest.fixture(scope="module")
def table(small_workload):
    return CodeTable(OntologyRegistry(small_workload.ontologies))


def deployment_with_services(small_workload, table, count=6, seed=3):
    config = DeploymentConfig(
        node_count=25, protocol="sariadne", election=FAST_ELECTION, seed=seed
    )
    deployment = Deployment(config, table=table)
    deployment.run_until_directories(minimum=2)
    services = small_workload.make_services(count)
    for index, profile in enumerate(services):
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(index % 25, document, service_uri=profile.uri)
    return deployment, services


def request_doc(small_workload, table, profile):
    request = small_workload.matching_request(profile)
    return request_to_xml(
        request,
        annotations=table.annotate(request.capabilities),
        codes_version=table.version,
    )


class TestHandoff:
    def test_services_survive_directory_departure(self, small_workload, table):
        deployment, services = deployment_with_services(small_workload, table)
        departing = deployment.directory_ids()[0]
        # Pick a non-directory successor.
        successor = next(
            nid for nid in range(25) if nid not in deployment.directory_agents
        )
        held_before = len(deployment.directory_agents[departing].cached_documents())
        assert deployment.transfer_directory(departing, successor)
        assert departing not in deployment.directory_agents
        assert successor in deployment.directory_agents
        held_after = len(deployment.directory_agents[successor].cached_documents())
        assert held_after >= held_before
        # Every service is still discoverable after the handoff.
        deployment.sim.run(until=deployment.sim.now + 10.0)
        for index, profile in enumerate(services):
            response = deployment.query_from(
                (index * 3 + 1) % 25, request_doc(small_workload, table, profile)
            )
            assert response is not None
            _latency, results = response
            assert any(row[0] == profile.uri for row in results), profile.uri

    def test_transfer_from_non_directory_rejected(self, small_workload, table):
        deployment, _services = deployment_with_services(small_workload, table, count=1)
        non_directory = next(
            nid for nid in range(25) if nid not in deployment.directory_agents
        )
        with pytest.raises(KeyError):
            deployment.transfer_directory(non_directory, 0)


class TestCodeRefresh:
    def test_stale_publish_triggers_refresh(self, small_workload, table):
        deployment, _services = deployment_with_services(small_workload, table, count=1)
        publisher = 7
        client = deployment.clients[publisher]
        profile = small_workload.make_service(40)
        stale_document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version + 99,  # stale!
        )
        client.publish(stale_document, service_uri=profile.uri)
        deployment.sim.run(until=deployment.sim.now + 3.0)
        # The directory rejected the stale codes and sent fresh ones.
        assert client.latest_code_version == table.version
        concepts = {c for cap in profile.provided for c in cap.concepts()}
        assert concepts <= set(client.code_updates)
        # Not cached under the stale codes.
        directory = deployment.directory_agents[deployment.clients[publisher].directory_id()]
        assert directory.stale_publishes >= 1

    def test_republish_with_refreshed_codes_succeeds(self, small_workload, table):
        deployment, _services = deployment_with_services(small_workload, table, count=1)
        publisher = 7
        client = deployment.clients[publisher]
        profile = small_workload.make_service(41)
        stale = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version + 1,
        )
        client.publish(stale, service_uri=profile.uri)
        deployment.sim.run(until=deployment.sim.now + 3.0)
        assert client.latest_code_version == table.version
        fresh = profile_to_xml(
            profile,
            annotations=client.code_updates,
            codes_version=client.latest_code_version,
        )
        client.publish(fresh, service_uri=profile.uri)
        deployment.sim.run(until=deployment.sim.now + 3.0)
        response = deployment.query_from(3, request_doc(small_workload, table, profile))
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)

    def test_malformed_publish_counted_not_fatal(self, small_workload, table):
        deployment, _services = deployment_with_services(small_workload, table, count=1)
        directory_id = deployment.directory_ids()[0]
        agent = deployment.directory_agents[directory_id]
        deployment.network.nodes[0].unicast(directory_id, PublishService("<garbage"))
        deployment.sim.run(until=deployment.sim.now + 2.0)
        assert agent.publish_errors == 1


class TestWiredLinks:
    def test_wired_link_bridges_partition(self):
        from repro.network.node import Network
        from repro.network.simulator import Simulator
        from repro.network.topology import Position

        sim = Simulator()
        network = Network(sim, radio_range=50.0)
        network.add_node(0, Position(0, 0))
        network.add_node(1, Position(400, 400))
        assert not network.is_connected()
        network.add_wired_link(0, 1)
        assert network.is_connected()
        assert network.is_wired(0, 1) and network.is_wired(1, 0)

    def test_wired_hop_is_faster(self):
        from repro.network.node import Network, ProtocolAgent
        from repro.network.simulator import Simulator
        from repro.network.topology import Position

        times = {}

        class Stamper(ProtocolAgent):
            def __init__(self, label, sim):
                super().__init__()
                self.label = label
                self.sim = sim

            def on_message(self, envelope):
                times[self.label] = self.sim.now

        sim = Simulator()
        network = Network(sim, radio_range=150.0)
        network.add_node(0, Position(0, 0))
        wireless_peer = network.add_node(1, Position(100, 0))
        wired_peer = network.add_node(2, Position(100, 100))
        network.add_wired_link(0, 2)
        wireless_peer.add_agent(Stamper("wireless", sim))
        wired_peer.add_agent(Stamper("wired", sim))
        network.start()
        network.nodes[0].unicast(1, PublishService("<x/>"))
        network.nodes[0].unicast(2, PublishService("<x/>"))
        sim.run()
        assert times["wired"] < times["wireless"]

    def test_wired_link_validation(self):
        from repro.network.node import Network
        from repro.network.simulator import Simulator
        from repro.network.topology import Position

        network = Network(Simulator())
        network.add_node(0, Position(0, 0))
        with pytest.raises(KeyError):
            network.add_wired_link(0, 9)
        with pytest.raises(ValueError):
            network.add_wired_link(0, 0)

"""Shard-primary failover: crash → election → zero-loss recovery.

The acceptance property of the sharded tier's resilience story: killing
the node hosting the K-shard directory (soft state wiped) must end with
a re-elected primary holding *every* advertisement again and answering
every request with row-identical results, and a follow-up handoff must
preserve both.  The experiment itself asserts nothing — the checks live
here and in the CI chaos path.
"""

from __future__ import annotations

from repro.experiments import shard_failover
from repro.obs import Observability
from repro.protocols.deployment import Deployment, DeploymentConfig


class TestShardFailover:
    def test_failover_recovers_all_advertisements(self):
        result = shard_failover(seed=0)
        assert result.extras["services_lost"] == 0, "advertisements lost in failover"
        assert result.extras["recovered"] == 1.0
        assert result.extras["results_equal"] == 1.0, "post-crash results diverged"
        assert result.extras["handoff_ok"] == 1.0, "handoff lost state"
        assert result.extras["caps_post"] == result.extras["caps_pre"]
        assert result.extras["caps_handoff"] == result.extras["caps_pre"]
        assert result.extras["recovery_s"] > 0

    def test_failover_emits_fault_and_rebalance_chronology(self):
        events = []

        class _Sink:
            def emit(self, span):
                pass

            def emit_event(self, event):
                events.append(event)

        obs = Observability(sinks=[_Sink()])
        result = shard_failover(seed=1, obs=obs)
        assert result.extras["services_lost"] == 0
        kinds = {event.kind for event in events}
        assert any(kind.startswith("fault.") for kind in kinds), kinds
        # The pull-based export mirrors per-shard gauges after recovery.
        names = {series["name"] for series in obs.metrics.snapshot()}
        assert "dir.shard.capabilities" in names


class TestShardedDeployment:
    def test_directory_shards_config_hosts_sharded_tier(self, small_workload):
        from repro.core.codes import CodeTable
        from repro.core.sharding import ShardedSemanticDirectory
        from repro.ontology.registry import OntologyRegistry

        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(
                node_count=6,
                protocol="sariadne",
                seed=3,
                directory_capable_fraction=1.0,
                directory_shards=4,
            ),
            table=table,
        )
        deployment.run_until_directories(minimum=1)
        agent = next(iter(deployment.directory_agents.values()))
        assert isinstance(agent.directory, ShardedSemanticDirectory)
        assert agent.directory.shard_count == 4
        assert agent.local_capability_count() == 0

"""Tests for soft-state advertising and directory-crash recovery."""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


@pytest.fixture(scope="module")
def table(small_workload):
    return CodeTable(OntologyRegistry(small_workload.ontologies))


def build(table, seed=3, capable=1.0):
    deployment = Deployment(
        DeploymentConfig(
            node_count=25,
            protocol="sariadne",
            election=FAST_ELECTION,
            seed=seed,
            directory_capable_fraction=capable,
        ),
        table=table,
    )
    deployment.run_until_directories(minimum=1)
    return deployment


class TestSoftState:
    def test_refresh_republishes(self, small_workload, table):
        deployment = build(table)
        profile = small_workload.make_service(0)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        client = deployment.clients[7]
        assert client.advertise(document, profile.uri, refresh_interval=10.0)
        deployment.sim.run(until=deployment.sim.now + 2.0)
        # Simulate content loss at the directory without a crash.
        holder = next(
            agent
            for agent in deployment.directory_agents.values()
            if agent.cached_documents()
        )
        holder.directory.unpublish(profile.uri)
        holder._documents_by_service.clear()
        deployment.sim.run(until=deployment.sim.now + 15.0)  # one refresh round
        assert any(
            agent.cached_documents()
            for agent in deployment.directory_agents.values()
        )

    def test_withdraw_stops_refresh(self, small_workload, table):
        deployment = build(table, seed=4)
        profile = small_workload.make_service(1)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        client = deployment.clients[3]
        client.advertise(document, profile.uri, refresh_interval=5.0)
        deployment.sim.run(until=deployment.sim.now + 2.0)
        client.withdraw(profile.uri)
        deployment.sim.run(until=deployment.sim.now + 20.0)
        assert all(
            profile.uri not in {row for row in agent._documents_by_service}
            for agent in deployment.directory_agents.values()
        )

    def test_crash_recovery_via_refresh(self, small_workload, table):
        deployment = build(table, seed=5)
        profile = small_workload.make_service(2)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        client = deployment.clients[11]
        client.advertise(document, profile.uri, refresh_interval=10.0)
        deployment.sim.run(until=deployment.sim.now + 2.0)
        # Crash every current directory: cached state is gone.
        for directory_id in list(deployment.directory_ids()):
            deployment.crash_directory(directory_id)
        # Re-election + refresh restore discoverability.
        deployment.run_until_directories(minimum=1, deadline=deployment.sim.now + 200.0)
        deployment.sim.run(until=deployment.sim.now + 30.0)
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(18, request_doc)
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)

    def test_crash_non_directory_rejected(self, table):
        deployment = build(table, seed=6)
        non_directory = next(
            nid for nid in range(25) if nid not in deployment.directory_agents
        )
        with pytest.raises(KeyError):
            deployment.crash_directory(non_directory)

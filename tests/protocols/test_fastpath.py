"""Backbone fast path: parse-once forwarding over the §4 backbone.

A request document used to be re-parsed at every step of Fig. 6 — once
per peer-summary probe, once per local match, once per receiving
directory.  The fast path parses it once at the origin (content-addressed
request cache) and ships the parsed form on the wire; these tests pin
the parse counts, the wire decode/fallback paths, the §3.2 stale-code
recovery, and result parity with the fast path disabled.
"""

import pytest

from repro.network.messages import (
    EncodedRequest,
    PublishService,
    RemoteQuery,
    SummaryRequest,
)
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position
from repro.protocols.sariadne import SAriadneClientAgent, SAriadneDirectoryAgent
from repro.services.xml_codec import CODEC_STATS, profile_to_xml, request_to_xml

from tests.protocols.test_base import mesh


def semantic_mesh(table, directory_count=3, fastpath=True):
    """Full-mesh S-Ariadne backbone plus one client homed on directory 0."""
    sim = Simulator()
    network = Network(sim, bounds=Bounds(100, 100), radio_range=500.0)
    directories = {}
    nid = 0
    for _ in range(directory_count):
        node = network.add_node(nid, Position(10.0 * nid, 10.0))
        agent = node.add_agent(SAriadneDirectoryAgent(table, forward_window=0.5))
        agent.use_fastpath = fastpath
        directories[nid] = agent
        nid += 1
    client_node = network.add_node(nid, Position(10.0 * nid, 20.0))
    client = client_node.add_agent(SAriadneClientAgent(lambda: 0))
    network.start()
    for agent in directories.values():
        agent.join_backbone()
    sim.run(until=5.0)
    return sim, network, directories, client


def profile_doc(workload, table, index):
    profile = workload.make_service(index)
    return profile.uri, profile_to_xml(
        profile, annotations=table.annotate(profile.provided), codes_version=table.version
    )


def request_doc(workload, table, index, version_offset=0):
    request = workload.matching_request(workload.make_service(index))
    return request_to_xml(
        request,
        annotations=table.annotate(request.capabilities),
        codes_version=table.version + version_offset,
    )


class TestParseOnceForwarding:
    def test_forwarded_query_decodes_wire_without_reparse(self, small_workload, small_table):
        sim, network, directories, client = semantic_mesh(small_table)
        uri, doc = profile_doc(small_workload, small_table, 0)
        network.nodes[3].unicast(1, PublishService(doc))  # remote-only hit
        sim.run(until=sim.now + 3.0)

        before = CODEC_STATS.snapshot()
        query_id = client.query(request_doc(small_workload, small_table, 0))
        sim.run(until=sim.now + 5.0)
        after = CODEC_STATS.snapshot()

        _latency, results = client.responses[query_id]
        assert any(row[0] == uri for row in results)
        # One parse at the origin; the answering peer decoded the wire form.
        assert after[1] - before[1] == 1  # request_parses
        assert directories[0].requests_parsed == 1
        assert directories[1].wire_decodes >= 1
        assert directories[1].requests_parsed == 0

    def test_repeated_query_parses_once(self, small_workload, small_table):
        sim, _network, directories, client = semantic_mesh(small_table, directory_count=1)
        doc = request_doc(small_workload, small_table, 0)
        before = CODEC_STATS.snapshot()
        for _ in range(4):
            client.query(doc)
            sim.run(until=sim.now + 2.0)
        after = CODEC_STATS.snapshot()
        assert after[1] - before[1] == 1
        assert directories[0].requests_parsed == 1
        assert directories[0].request_cache.stats.hits >= 3

    def test_fastpath_results_match_legacy(self, small_workload, small_table):
        rows = {}
        for fastpath in (True, False):
            sim, network, _directories, client = semantic_mesh(
                small_table, fastpath=fastpath
            )
            network.use_route_cache = fastpath
            for index in range(3):
                _uri, doc = profile_doc(small_workload, small_table, index)
                network.nodes[3].unicast((index % 2) + 1, PublishService(doc))
            sim.run(until=sim.now + 3.0)
            collected = []
            for index in range(3):
                query_id = client.query(request_doc(small_workload, small_table, index))
                sim.run(until=sim.now + 5.0)
                collected.append(client.responses[query_id][1])
            rows[fastpath] = collected
        assert rows[True] == rows[False]

    def test_wire_version_mismatch_falls_back_to_document(
        self, small_workload, small_table
    ):
        sim, network, directories, _client = semantic_mesh(small_table, directory_count=2)
        doc = request_doc(small_workload, small_table, 0)
        stale_wire = EncodedRequest(
            protocol="sariadne", codes_version=small_table.version + 1
        )
        network.nodes[0].unicast(1, RemoteQuery(99, doc, 0, wire=stale_wire))
        sim.run(until=sim.now + 2.0)
        assert directories[1].wire_fallbacks == 1
        assert directories[1].requests_parsed == 1  # parsed the XML instead

    def test_foreign_protocol_wire_falls_back(self, small_workload, small_table):
        sim, network, directories, _client = semantic_mesh(small_table, directory_count=2)
        doc = request_doc(small_workload, small_table, 0)
        foreign = EncodedRequest(protocol="ariadne", codes_version=None, data=("u", (), ()))
        network.nodes[0].unicast(1, RemoteQuery(98, doc, 0, wire=foreign))
        sim.run(until=sim.now + 2.0)
        assert directories[1].wire_fallbacks == 1


class TestStaleCodeRecovery:
    def test_stale_request_gets_empty_answer_plus_fresh_codes(
        self, small_workload, small_table
    ):
        sim, network, directories, client = semantic_mesh(small_table, directory_count=2)
        _uri, doc = profile_doc(small_workload, small_table, 0)
        network.nodes[2].unicast(0, PublishService(doc))
        sim.run(until=sim.now + 3.0)
        stale = request_doc(small_workload, small_table, 0, version_offset=5)
        query_id = client.query(stale)
        sim.run(until=sim.now + 5.0)
        _latency, results = client.responses[query_id]
        assert results == ()  # stale codes: no match, but no crash either
        # The §3.2 recovery machinery answered with the current codes.
        assert client.latest_code_version == small_table.version
        assert client.code_updates


class TestForwardTieBreak:
    def test_equal_rank_peers_ordered_by_id(self):
        sim, _network, directories, _clients = mesh(directory_count=4)
        origin = directories[0]
        for nid in (1, 2, 3):
            directories[nid].documents.append("service-t")
            directories[nid]._mark_content_changed()
        sim.run(until=sim.now + 3.0)
        # Full mesh: every peer is 1 hop with full battery — the ranking
        # must fall back to the peer id, identically on every call.
        first = origin._rank_forward_peers("service-t")
        assert first == [1, 2, 3]
        for _ in range(5):
            assert origin._rank_forward_peers("service-t") == first


class TestReactiveRefreshExactlyOnce:
    def test_threshold_crossing_sends_one_request_and_resets(self):
        _sim, _network, directories, _clients = mesh(directory_count=2)
        origin = directories[0]
        origin.false_positive_min_samples = 4
        origin._peer_forwarded[1] = 4
        sent = []
        origin.node.unicast = lambda dest, payload: sent.append((dest, payload)) or True
        for _ in range(4):
            origin._note_false_positive(1)
        requests = [p for _dest, p in sent if isinstance(p, SummaryRequest)]
        # 1/4 and 2/4 stay under the 0.5 threshold, 3/4 crosses it exactly
        # once; the reset counters (0 forwarded) block the fourth call.
        assert len(requests) == 1
        assert origin.summary_refreshes_requested == 1
        assert origin._peer_forwarded[1] == 0
        assert origin._peer_empty[1] == 1  # the post-reset sample


class TestHandoffWithQueriesInFlight:
    def test_in_flight_query_concludes_and_content_survives(self):
        sim, network, directories, clients = mesh(directory_count=3)
        client = next(iter(clients.values()))
        network.nodes[client.node.node_id].unicast(1, PublishService("service-h"))
        sim.run(until=sim.now + 3.0)

        query_id = client.query("service-h")
        deadline = sim.now + 2.0
        while directories[0].queries_forwarded == 0 and sim.now < deadline:
            sim.run(until=sim.now + 0.002)
        assert directories[0].queries_forwarded >= 1
        # Hand off while the forwarded RemoteQuery is still in flight.
        assert directories[1].hand_off_to(2)
        sim.run(until=sim.now + 10.0)

        # The in-flight query concluded (whatever it saw) — no hang.
        assert query_id in client.responses
        # The advertisement survived the handoff and is discoverable again.
        assert "service-h" in directories[2].documents
        retry_id = client.query("service-h")
        sim.run(until=sim.now + 10.0)
        _latency, results = client.responses[retry_id]
        assert any(row[0] == "service-h" for row in results)

"""Graceful degradation under injected faults (§4 resilience).

End-to-end checks of the failure behaviours the chaos experiment relies
on: directory crash → re-election → soft-state re-registration; silent
backbone peers evicted after repeated forward timeouts; partial query
responses when part of the backbone is unreachable; and retry/exhaustion
timer hygiene on the client (no leaked events once a query resolves).
"""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.faults import FaultPlan
from repro.obs import Observability, RingBufferSink, install
from repro.ontology.registry import OntologyRegistry
from repro.protocols.base import QueryOutcome
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


@pytest.fixture(scope="module")
def table(small_workload):
    return CodeTable(OntologyRegistry(small_workload.ontologies))


def build(table, seed=3):
    deployment = Deployment(
        DeploymentConfig(
            node_count=25,
            protocol="sariadne",
            election=FAST_ELECTION,
            seed=seed,
            directory_capable_fraction=1.0,
        ),
        table=table,
    )
    deployment.run_until_directories(minimum=1)
    return deployment


def docs_for(workload, table, index):
    profile = workload.make_service(index)
    document = profile_to_xml(
        profile,
        annotations=table.annotate(profile.provided),
        codes_version=table.version,
    )
    request = workload.matching_request(profile)
    request_doc = request_to_xml(
        request,
        annotations=table.annotate(request.capabilities),
        codes_version=table.version,
    )
    return profile, document, request_doc


def up_directories(deployment):
    return [
        nid
        for nid in deployment.directory_ids()
        if deployment.network.is_up(nid)
    ]


class TestDirectoryCrashFailover:
    def test_fault_plan_crash_triggers_reelection_and_reregistration(
        self, small_workload, table
    ):
        deployment = build(table, seed=5)
        sink = RingBufferSink()
        install(Observability(sinks=[sink]), deployment.network)
        profile, document, request_doc = docs_for(small_workload, table, 2)
        client = deployment.clients[11]
        assert client.advertise(document, profile.uri, refresh_interval=10.0)
        deployment.sim.run(until=deployment.sim.now + 2.0)

        victims = up_directories(deployment)
        plan = FaultPlan(seed=0)
        for victim in victims:
            plan.crash(at=deployment.sim.now + 1.0, node=victim, wipe_state=True)
        deployment.install_fault_plan(plan)
        # Crash fires, directory timeout expires, a new election runs, the
        # fresh directory's advert triggers immediate re-registration.
        deployment.sim.run(until=deployment.sim.now + 60.0)

        survivors = up_directories(deployment)
        assert survivors, "no directory re-elected after the crash"
        assert set(survivors).isdisjoint(victims)
        response = deployment.query_from(18, request_doc)
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)
        kinds = [event.kind for event in sink.events]
        assert "fault.node_crash" in kinds
        assert "election.promoted" in kinds
        # The crash wiped the cache; only re-registration explains the hit.
        assert all(
            not deployment.directory_agents[v].cached_documents() for v in victims
        )

    def test_crash_restart_directory_recovers_via_refresh(
        self, small_workload, table
    ):
        deployment = build(table, seed=7)
        profile, document, request_doc = docs_for(small_workload, table, 3)
        client = deployment.clients[9]
        assert client.advertise(document, profile.uri, refresh_interval=10.0)
        deployment.sim.run(until=deployment.sim.now + 2.0)

        victim = up_directories(deployment)[0]
        deployment.network.crash_node(victim, wipe_state=True)
        deployment.network.restart_node(victim)
        agent = deployment.directory_agents[victim]
        assert not agent.cached_documents()  # hard crash wiped the cache
        # One refresh round re-registers the soft-state advertisement.
        deployment.sim.run(until=deployment.sim.now + 15.0)
        response = deployment.query_from(4, request_doc)
        assert response is not None
        assert any(row[0] == profile.uri for row in response[1])


class TestPartialAndPeerEviction:
    def _silent_peer_setup(self, table, small_workload, seed=4):
        deployment = build(table, seed=seed)
        directory_id = up_directories(deployment)[0]
        agent = deployment.directory_agents[directory_id]
        # A plain client node on the backbone view: it will receive the
        # forwarded RemoteQuery and (having no directory agent) stay
        # silent — exactly how an unreachable/crashed peer looks.
        silent_peer = next(
            nid for nid in range(25) if nid not in deployment.directory_agents
        )
        agent.known_peers.add(silent_peer)
        _profile, _doc, request_doc = docs_for(small_workload, table, 1)
        return deployment, agent, silent_peer, request_doc

    def test_unanswered_forward_yields_partial_outcome(
        self, small_workload, table
    ):
        deployment, agent, _peer, request_doc = self._silent_peer_setup(
            table, small_workload
        )
        client = deployment.clients[6]
        ticket = client.query(request_doc)
        assert ticket
        deployment.sim.run(until=deployment.sim.now + agent.forward_window + 5.0)
        assert ticket.outcome is QueryOutcome.PARTIAL
        assert bool(QueryOutcome.PARTIAL)  # partial still counts as answered
        assert ticket.query_id in client.responses

    def test_silent_peer_evicted_after_threshold_timeouts(
        self, small_workload, table
    ):
        deployment, agent, silent_peer, request_doc = self._silent_peer_setup(
            table, small_workload
        )
        sink = RingBufferSink()
        install(Observability(sinks=[sink]), deployment.network)
        client = deployment.clients[6]
        for _round in range(agent.peer_silence_threshold):
            assert silent_peer in agent.known_peers
            client.query(request_doc)
            deployment.sim.run(
                until=deployment.sim.now + agent.forward_window + 5.0
            )
        assert silent_peer not in agent.known_peers
        assert agent.peers_evicted == 1
        evicted = [e for e in sink.events if e.kind == "peer.evicted"]
        assert len(evicted) == 1
        assert evicted[0].attrs["peer"] == silent_peer
        assert evicted[0].cause == "silent_timeouts"
        # Queries after eviction are whole again (no outstanding peers).
        ticket = client.query(request_doc)
        deployment.sim.run(until=deployment.sim.now + agent.forward_window + 5.0)
        assert ticket.outcome is QueryOutcome.ANSWERED

    def test_peer_traffic_resets_silence_strikes(self, small_workload, table):
        deployment, agent, silent_peer, request_doc = self._silent_peer_setup(
            table, small_workload
        )
        client = deployment.clients[6]
        client.query(request_doc)
        deployment.sim.run(until=deployment.sim.now + agent.forward_window + 5.0)
        assert agent._peer_silent.get(silent_peer) == 1
        agent._note_peer_alive(silent_peer)
        assert silent_peer not in agent._peer_silent
        assert silent_peer in agent.known_peers


class TestQueryTimerHygiene:
    def test_answered_query_cancels_exhaustion_and_retry_timers(
        self, small_workload, table
    ):
        deployment = build(table, seed=8)
        profile, document, request_doc = docs_for(small_workload, table, 0)
        client = deployment.clients[13]
        assert deployment.publish_from(13, document, service_uri=profile.uri)

        ticket = client.query(request_doc, retries=3, retry_timeout=5.0)
        assert ticket
        deployment.sim.run(until=deployment.sim.now + 3.0)
        assert ticket.outcome in (QueryOutcome.ANSWERED, QueryOutcome.PARTIAL)
        # The event leak this guards against: an answered query must leave
        # no armed exhaustion/retry timer behind.
        assert client._exhaust_events == {}
        assert client._retry_events == {}
        # And silence past every retry window must not re-send anything.
        deployment.sim.run(until=deployment.sim.now + 120.0)
        assert client.retries_sent == 0
        assert ticket.outcome in (QueryOutcome.ANSWERED, QueryOutcome.PARTIAL)

    def test_silent_directory_exhausts_with_backoff(self, small_workload, table):
        deployment = build(table, seed=9)
        _profile, _document, request_doc = docs_for(small_workload, table, 4)
        client = deployment.clients[2]
        ticket = client.query(request_doc, retries=1, retry_timeout=2.0)
        assert ticket
        assert ticket.outcome is QueryOutcome.PENDING
        # Crash the backbone while the request is in flight: it is dropped
        # at the down node, every retry goes unanswered.
        for victim in up_directories(deployment):
            deployment.network.crash_node(victim, wipe_state=False)
        # Budget = 2s + 4s (backoff 2.0): exhausted by t+6, not at t+4.
        deployment.sim.run(until=deployment.sim.now + 5.0)
        assert ticket.outcome is QueryOutcome.PENDING
        deployment.sim.run(until=deployment.sim.now + 2.0)
        assert ticket.outcome is QueryOutcome.EXHAUSTED
        assert client._exhaust_events == {}
        assert client._retry_events == {}

    def test_client_crash_disarms_pending_query_timers(
        self, small_workload, table
    ):
        deployment = build(table, seed=10)
        _profile, _document, request_doc = docs_for(small_workload, table, 5)
        client = deployment.clients[2]
        ticket = client.query(request_doc, retries=2, retry_timeout=3.0)
        assert ticket.outcome is QueryOutcome.PENDING
        for victim in up_directories(deployment):
            deployment.network.crash_node(victim, wipe_state=False)
        deployment.network.crash_node(2, wipe_state=False)
        assert ticket.outcome is QueryOutcome.EXHAUSTED
        assert client._exhaust_events == {}
        assert client._retry_events == {}

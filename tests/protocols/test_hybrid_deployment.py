"""Tests for hybrid ad hoc + infrastructure deployments (§1)."""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


@pytest.fixture(scope="module")
def table(small_workload):
    return CodeTable(OntologyRegistry(small_workload.ontologies))


class TestConfigValidation:
    def test_negative_infrastructure_rejected(self):
        with pytest.raises(ValueError):
            DeploymentConfig(infrastructure_nodes=-1)

    def test_too_many_infrastructure_rejected(self):
        with pytest.raises(ValueError):
            DeploymentConfig(node_count=5, infrastructure_nodes=6)


class TestHybridTopology:
    def test_backbone_wired_pairwise(self, table):
        deployment = Deployment(
            DeploymentConfig(
                node_count=16,
                protocol="sariadne",
                election=FAST_ELECTION,
                infrastructure_nodes=3,
                seed=2,
            ),
            table=table,
        )
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert deployment.network.is_wired(a, b)
        assert not deployment.network.is_wired(0, 5)

    def test_infrastructure_nodes_always_capable(self, table):
        deployment = Deployment(
            DeploymentConfig(
                node_count=16,
                protocol="sariadne",
                election=FAST_ELECTION,
                infrastructure_nodes=3,
                directory_capable_fraction=0.0,  # only infra may serve
                seed=2,
            ),
            table=table,
        )
        for node_id in range(3):
            assert deployment.elections[node_id].directory_capable
        for node_id in range(3, 16):
            assert not deployment.elections[node_id].directory_capable

    def test_elections_prefer_infrastructure(self, table):
        deployment = Deployment(
            DeploymentConfig(
                node_count=16,
                protocol="sariadne",
                election=FAST_ELECTION,
                infrastructure_nodes=3,
                directory_capable_fraction=0.0,
                seed=2,
            ),
            table=table,
        )
        deployment.run_until_directories(minimum=1)
        assert set(deployment.directory_ids()) <= {0, 1, 2}

    def test_end_to_end_discovery_over_backbone(self, small_workload, table):
        deployment = Deployment(
            DeploymentConfig(
                node_count=20,
                protocol="sariadne",
                election=FAST_ELECTION,
                infrastructure_nodes=4,
                directory_capable_fraction=0.0,
                radio_range=180.0,  # 20-node grid spacing is 160 m
                seed=3,
            ),
            table=table,
        )
        assert deployment.network.is_connected()
        deployment.run_until_directories(minimum=1)
        profile = small_workload.make_service(0)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        assert deployment.publish_from(10, document, service_uri=profile.uri)
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(17, request_doc)
        assert response is not None
        _latency, results = response
        assert any(row[0] == profile.uri for row in results)

"""Tests for the syntactic WSDL registry (Ariadne local / UDDI)."""

import pytest

from repro.registry.syntactic import SyntacticRegistry
from repro.services.generator import ServiceWorkload
from repro.services.wsdl import WsdlDescription, WsdlOperation, WsdlRequest
from repro.services.xml_codec import ServiceSyntaxError, wsdl_to_xml


def desc(uri="urn:x:svc:1", name="getStream", keywords=("media",)) -> WsdlDescription:
    return WsdlDescription(
        uri=uri,
        port_type="Media",
        operations=(WsdlOperation(name, inputs=("title",), outputs=("stream",)),),
        keywords=keywords,
    )


def req(name="getStream", keywords=()) -> WsdlRequest:
    return WsdlRequest(
        uri="urn:x:req:1",
        operations=(WsdlOperation(name, inputs=("title",), outputs=("stream",)),),
        keywords=tuple(keywords),
    )


class TestPublish:
    def test_publish_and_len(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc())
        assert len(registry) == 1

    def test_republish_replaces(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc(keywords=("old",)))
        registry.publish_wsdl(desc(keywords=("new",)))
        assert len(registry) == 1
        assert not registry.query_wsdl(req(keywords=("old",)))

    def test_unpublish(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc())
        assert registry.unpublish("urn:x:svc:1")
        assert not registry.unpublish("urn:x:svc:1")
        assert len(registry) == 0

    def test_publish_xml(self):
        registry = SyntacticRegistry()
        registry.publish_xml(wsdl_to_xml(desc()))
        assert len(registry) == 1

    def test_publish_xml_rejects_request_document(self):
        registry = SyntacticRegistry()
        with pytest.raises(ServiceSyntaxError):
            registry.publish_xml(wsdl_to_xml(req()))


class TestQuery:
    def test_conforming_service_found(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc())
        assert [d.uri for d in registry.query_wsdl(req())] == ["urn:x:svc:1"]

    def test_non_conforming_rejected(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc(name="getStream"))
        assert registry.query_wsdl(req(name="fetchStream")) == []

    def test_keyword_index_shortlists(self):
        registry = SyntacticRegistry(use_keyword_index=True)
        registry.publish_wsdl(desc(uri="urn:x:svc:1", keywords=("media",)))
        registry.publish_wsdl(desc(uri="urn:x:svc:2", keywords=("printer",)))
        hits = registry.query_wsdl(req(keywords=("media",)))
        assert [d.uri for d in hits] == ["urn:x:svc:1"]

    def test_no_keywords_scans_all(self):
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc(uri="urn:x:svc:1"))
        registry.publish_wsdl(desc(uri="urn:x:svc:2"))
        assert len(registry.query_wsdl(req(keywords=()))) == 2

    def test_query_xml_rejects_description_document(self):
        registry = SyntacticRegistry()
        with pytest.raises(ServiceSyntaxError):
            registry.query_xml(wsdl_to_xml(desc()))

    def test_workload_twins(self, small_workload):
        registry = SyntacticRegistry()
        services = small_workload.make_services(20)
        for profile in services:
            registry.publish_wsdl(ServiceWorkload.wsdl_twin(profile))
        request = ServiceWorkload.wsdl_request_for(services[9])
        hits = registry.query_wsdl(request)
        assert [d.uri for d in hits] == [services[9].uri]


class TestBrittleness:
    def test_synonym_breaks_syntactic_discovery(self):
        """The paper's core motivation: a requester using a synonymous
        interface finds nothing syntactically."""
        registry = SyntacticRegistry()
        registry.publish_wsdl(desc(name="getVideoStream"))
        assert registry.query_wsdl(req(name="fetchVideoStream")) == []


class TestWsdlDocumentRegistry:
    """Ariadne's original behaviour: documents stored raw, parsed per
    query (the Fig. 10 growth mechanism)."""

    def _registry(self):
        from repro.registry.syntactic import WsdlDocumentRegistry

        return WsdlDocumentRegistry()

    def test_publish_and_query(self):
        registry = self._registry()
        registry.publish_xml(wsdl_to_xml(desc()))
        hits = registry.query_xml(wsdl_to_xml(req()))
        assert [d.uri for d in hits] == ["urn:x:svc:1"]

    def test_republish_replaces(self):
        registry = self._registry()
        registry.publish_xml(wsdl_to_xml(desc()))
        registry.publish_xml(wsdl_to_xml(desc()))
        assert len(registry) == 1

    def test_unpublish(self):
        registry = self._registry()
        registry.publish_xml(wsdl_to_xml(desc()))
        assert registry.unpublish("urn:x:svc:1")
        assert not registry.unpublish("urn:x:svc:1")
        assert registry.query_xml(wsdl_to_xml(req())) == []

    def test_rejects_request_documents_on_publish(self):
        registry = self._registry()
        with pytest.raises(ServiceSyntaxError):
            registry.publish_xml(wsdl_to_xml(req()))

    def test_rejects_description_on_query(self):
        registry = self._registry()
        with pytest.raises(ServiceSyntaxError):
            registry.query_xml(wsdl_to_xml(desc()))

    def test_parse_time_grows_with_population(self):
        registry = self._registry()
        for index in range(50):
            registry.publish_xml(wsdl_to_xml(desc(uri=f"urn:x:svc:{index}")))
        registry.query_xml(wsdl_to_xml(req()))
        small_parse = registry.timer.seconds("parse")
        for index in range(50, 200):
            registry.publish_xml(wsdl_to_xml(desc(uri=f"urn:x:svc:{index}")))
        registry.query_xml(wsdl_to_xml(req()))
        total_parse = registry.timer.seconds("parse")
        assert total_parse - small_parse > small_parse  # 4x docs, > 2x time

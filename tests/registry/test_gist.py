"""Tests for the GiST/R-tree numeric index ([3], §3.1 background)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registry.gist import GistIndex, Rect
from repro.services.profile import Capability

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


class TestRect:
    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_intersects(self):
        assert Rect(0, 1, 0, 1).intersects(Rect(0.5, 2, 0.5, 2))
        assert not Rect(0, 1, 0, 1).intersects(Rect(2, 3, 0, 1))

    def test_union_and_enlargement(self):
        a, b = Rect(0, 1, 0, 1), Rect(2, 3, 0, 1)
        assert a.union(b) == Rect(0, 3, 0, 1)
        assert a.enlargement(b) == pytest.approx(2.0)


class TestInsertSearch:
    def test_inserted_rect_found(self):
        index = GistIndex()
        index.insert(Rect(0.1, 0.2, 0.0, 1.0), "svc1")
        assert index.search(Rect(0.15, 0.16, 0.5, 0.6)) == {"svc1"}

    def test_disjoint_rect_not_found(self):
        index = GistIndex()
        index.insert(Rect(0.1, 0.2, 0.0, 1.0), "svc1")
        assert index.search(Rect(0.5, 0.6, 0.0, 1.0)) == set()

    def test_splits_preserve_entries(self):
        index = GistIndex(max_entries=4)
        rng = random.Random(0)
        keys = {}
        for i in range(200):
            x = rng.random()
            rect = Rect(x, x + 0.01, 0.0, 1.0)
            index.insert(rect, f"svc{i}")
            keys[f"svc{i}"] = rect
        assert len(index) == 200
        assert index.depth() > 1
        for key, rect in keys.items():
            assert key in index.search(rect), key

    @given(st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_search_complete_property(self, xs):
        index = GistIndex(max_entries=4)
        for i, x in enumerate(xs):
            index.insert(Rect(x, x + 0.01, 0.0, 1.0), f"k{i}")
        for i, x in enumerate(xs):
            assert f"k{i}" in index.search(Rect(x, x + 0.005, 0.0, 1.0))

    def test_min_capacity_enforced(self):
        with pytest.raises(ValueError):
            GistIndex(max_entries=2)


class TestCapabilityIndexing:
    def test_preselection_is_sound(self, media_table, small_workload, small_table):
        """Every true match must survive GiST preselection (no false
        dismissals), per the [3] design."""
        from repro.core.matching import CodeMatcher

        index = GistIndex()
        matcher = CodeMatcher(table=small_table)
        services = small_workload.make_services(25)
        for profile in services:
            for cap in profile.provided:
                index.insert_capability(cap, small_table, profile.uri)
        for target in services[:10]:
            request = small_workload.matching_request(target).capabilities[0]
            candidates = index.search_capability(request, small_table)
            for profile in services:
                for cap in profile.provided:
                    if matcher.match(cap, request):
                        assert profile.uri in candidates, profile.uri

    def test_rectangles_for_roles(self, media_table):
        cap = Capability.build(
            "urn:x:c",
            "C",
            inputs=[r("DigitalResource")],
            outputs=[r("Stream")],
        )
        probe_rects = GistIndex.rectangles_for(cap, media_table, probe=True)
        assert len(probe_rects) == 2
        assert {(rect.y_lo, rect.y_hi) for rect in probe_rects} == {(0.0, 1.0), (1.0, 2.0)}
        index_rects = GistIndex.rectangles_for(cap, media_table, probe=False)
        assert len(index_rects) >= 2  # one per merged code interval

    def test_unknown_concepts_skipped(self, media_table):
        cap = Capability.build("urn:x:c", "C", outputs=["http://elsewhere.org/x#Y"])
        assert GistIndex.rectangles_for(cap, media_table) == []

"""Tests for the on-line-reasoning matchmaker (Fig. 2 baseline)."""

import pytest

from repro.ontology.owl_xml import ontology_to_xml
from repro.ontology.reasoner import ClassificationStrategy
from repro.registry.naive_semantic import OnlineMatchmaker, OnlineSemanticRegistry
from repro.services.generator import ServiceWorkload
from repro.services.xml_codec import profile_to_xml, request_to_xml


@pytest.fixture(scope="module")
def documents(small_workload):
    profile = small_workload.make_service(0)
    request = small_workload.matching_request(profile)
    return {
        "profile": profile_to_xml(profile),
        "request": request_to_xml(request),
        "ontologies": [ontology_to_xml(o) for o in small_workload.ontologies],
    }


class TestOnlineMatchmaker:
    @pytest.mark.parametrize("strategy", list(ClassificationStrategy))
    def test_all_strategies_match(self, documents, strategy):
        report = OnlineMatchmaker(strategy=strategy).match_documents(
            documents["profile"], documents["request"], documents["ontologies"]
        )
        assert report.outcome.matched
        assert report.outcome.distance is not None

    def test_phase_breakdown_populated(self, documents):
        report = OnlineMatchmaker().match_documents(
            documents["profile"], documents["request"], documents["ontologies"]
        )
        assert report.parse_seconds > 0
        assert report.load_seconds > 0
        assert report.classify_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.parse_seconds
            + report.load_seconds
            + report.classify_seconds
            + report.match_seconds
        )

    def test_reasoning_dominates(self, documents):
        """The §2.4 finding: loading + classifying is the dominant phase of
        an on-line match (paper: 76–78 %)."""
        report = OnlineMatchmaker(strategy=ClassificationStrategy.ENUMERATIVE).match_documents(
            documents["profile"], documents["request"], documents["ontologies"]
        )
        assert report.reasoning_share > 0.5

    def test_subsumption_tests_counted(self, documents):
        report = OnlineMatchmaker().match_documents(
            documents["profile"], documents["request"], documents["ontologies"]
        )
        assert report.subsumption_tests > 0


class TestOnlineSemanticRegistry:
    def test_query_finds_advertised_service(self, small_workload):
        registry = OnlineSemanticRegistry(small_workload.ontologies)
        services = small_workload.make_services(8)
        for profile in services:
            registry.publish_xml(profile_to_xml(profile))
        assert len(registry) == 8
        request = small_workload.matching_request(services[2])
        hits = registry.query_xml(request_to_xml(request))
        assert any(uri == services[2].uri for uri, _distance in hits)

    def test_results_sorted_by_distance(self, small_workload):
        registry = OnlineSemanticRegistry(small_workload.ontologies)
        for profile in small_workload.make_services(8):
            registry.publish_xml(profile_to_xml(profile))
        request = small_workload.matching_request(small_workload.make_service(2))
        hits = registry.query_xml(request_to_xml(request))
        assert hits == sorted(hits, key=lambda pair: pair[1])

    def test_agrees_with_optimized_directory(self, small_workload, small_table):
        """Same Match semantics: the on-line registry and the optimized
        directory must find the same best service."""
        from repro.core.directory import SemanticDirectory

        registry = OnlineSemanticRegistry(small_workload.ontologies)
        directory = SemanticDirectory(small_table)
        services = small_workload.make_services(10)
        for profile in services:
            registry.publish_xml(profile_to_xml(profile))
            directory.publish(profile)
        request = small_workload.matching_request(services[7])
        online_hits = registry.query_xml(request_to_xml(request))
        optimized_hits = directory.query(request)
        assert online_hits, "online registry found nothing"
        assert optimized_hits, "optimized directory found nothing"
        assert online_hits[0][1] == optimized_hits[0].distance

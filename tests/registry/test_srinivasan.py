"""Tests for the annotated-taxonomy registry ([13], §3.1 background)."""

import pytest

from repro.registry.srinivasan import AnnotatedTaxonomyRegistry, MatchDegree
from repro.services.profile import Capability, ServiceProfile

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def service(uri, outputs, inputs=()) -> ServiceProfile:
    cap = Capability.build(f"{uri}:cap", "C", inputs=inputs, outputs=outputs)
    return ServiceProfile(uri=uri, name="S", provided=(cap,))


def request(outputs, inputs=()) -> Capability:
    return Capability.build("urn:x:req:cap", "R", inputs=inputs, outputs=outputs)


@pytest.fixture()
def registry(media_taxonomy):
    return AnnotatedTaxonomyRegistry(media_taxonomy)


class TestDegrees:
    def test_exact(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Stream")]))
        ranked = registry.query_capability(request(outputs=[r("Stream")]))
        assert ranked[0].degree is MatchDegree.EXACT

    def test_plugin_when_advert_more_specific(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("VideoResource")]))
        ranked = registry.query_capability(request(outputs=[r("DigitalResource")]))
        assert ranked and ranked[0].degree is MatchDegree.PLUGIN

    def test_subsumes_when_advert_more_general(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("DigitalResource")]))
        ranked = registry.query_capability(request(outputs=[r("VideoResource")]))
        assert ranked and ranked[0].degree is MatchDegree.SUBSUMES

    def test_fail_when_unrelated(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Title")]))
        assert registry.query_capability(request(outputs=[r("Stream")])) == []

    def test_best_degree_ranked_first(self, registry):
        registry.publish(service("urn:x:exact", outputs=[r("VideoResource")]))
        registry.publish(service("urn:x:general", outputs=[r("DigitalResource")]))
        ranked = registry.query_capability(request(outputs=[r("VideoResource")]))
        assert ranked[0].service_uri == "urn:x:exact"
        assert ranked[1].degree is MatchDegree.SUBSUMES


class TestIntersection:
    def test_all_outputs_required(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Stream")]))
        registry.publish(service("urn:x:s2", outputs=[r("Stream"), r("Title")]))
        ranked = registry.query_capability(request(outputs=[r("Stream"), r("Title")]))
        assert [x.service_uri for x in ranked] == ["urn:x:s2"]

    def test_aggregate_degree_is_worst(self, registry):
        registry.publish(
            service("urn:x:s1", outputs=[r("Stream"), r("DigitalResource")])
        )
        ranked = registry.query_capability(request(outputs=[r("Stream"), r("VideoResource")]))
        # Stream exact + VideoResource via subsumes ⇒ aggregate SUBSUMES.
        assert ranked[0].degree is MatchDegree.SUBSUMES

    def test_inputs_filter(self, registry):
        registry.publish(
            service("urn:x:s1", outputs=[r("Stream")], inputs=[r("DigitalResource")])
        )
        ranked = registry.query_capability(
            request(outputs=[r("Stream")], inputs=[r("DigitalResource")])
        )
        assert ranked
        # A request offering an input the service never declared acceptable.
        assert (
            registry.query_capability(request(outputs=[r("Stream")], inputs=[r("Title")])) == []
        )

    def test_input_descendants_acceptable(self, registry):
        """An advert expecting DigitalResource accepts offered VideoResource."""
        registry.publish(
            service("urn:x:s1", outputs=[r("Stream")], inputs=[r("DigitalResource")])
        )
        ranked = registry.query_capability(
            request(outputs=[r("Stream")], inputs=[r("VideoResource")])
        )
        assert ranked


class TestLifecycle:
    def test_unpublish_strips_annotations(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Stream")]))
        assert registry.unpublish("urn:x:s1")
        assert registry.query_capability(request(outputs=[r("Stream")])) == []

    def test_unpublish_unknown(self, registry):
        assert not registry.unpublish("urn:x:s1")

    def test_republish_replaces(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Stream")]))
        registry.publish(service("urn:x:s1", outputs=[r("Title")]))
        assert registry.query_capability(request(outputs=[r("Stream")])) == []
        assert registry.query_capability(request(outputs=[r("Title")]))

    def test_publish_work_counted(self, registry):
        before = registry.publish_work
        registry.publish(service("urn:x:s1", outputs=[r("VideoResource")]))
        # EXACT + PLUGIN for each ancestor + SUBSUMES for descendants.
        assert registry.publish_work - before >= 4

    def test_unknown_concept_request_rejected(self, registry):
        registry.publish(service("urn:x:s1", outputs=[r("Stream")]))
        assert registry.query_capability(request(outputs=["http://other.org/o#X"])) == []

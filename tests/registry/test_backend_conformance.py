"""Conformance suite for the unified :class:`DiscoveryBackend` contract.

Every discovery mechanism in the repository — the core directories, the
staged matchmaker, and all four baseline registries — must expose the
same surface: ``publish`` (profiles), ``unpublish`` returning the removed
entry count, ``query`` (a :class:`ServiceRequest`) returning
:class:`DirectoryMatch` rows, the batch forms, ``capability_count``,
``describe`` and the structured ``describe_info`` schema.  The suite runs
the same scenario over every backend; per-backend matching *quality*
differs (syntactic matching needs the exact interface), so requests here
reuse the published profile's own capabilities — an exact request every
backend must answer.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.matchmaker import StagedMatchmaker
from repro.registry import (
    AnnotatedTaxonomyRegistry,
    DirectoryMatch,
    DiscoveryBackend,
    GistDirectory,
    OnlineSemanticRegistry,
    SyntacticRegistry,
)
from repro.services.generator import ServiceWorkload
from repro.services.profile import ServiceRequest

BACKENDS = ["semantic", "flat", "syntactic", "annotated", "online", "gist", "staged"]


@pytest.fixture(scope="module")
def profiles(small_workload):
    return small_workload.make_services(4)


@pytest.fixture
def backend(request, small_workload, small_table):
    """One fresh backend instance per test, parametrized over all seven."""
    kind = request.param
    if kind == "semantic":
        return SemanticDirectory(small_table)
    if kind == "flat":
        return FlatDirectory(small_table)
    if kind == "syntactic":
        return SyntacticRegistry()
    if kind == "annotated":
        return AnnotatedTaxonomyRegistry(small_workload.taxonomy)
    if kind == "online":
        return OnlineSemanticRegistry(small_workload.ontologies)
    if kind == "gist":
        return GistDirectory(small_table)
    if kind == "staged":
        return StagedMatchmaker(small_table)
    raise AssertionError(kind)


def exact_request(profile) -> ServiceRequest:
    """A request for exactly the profile's provided capabilities."""
    return ServiceRequest(
        uri=f"{profile.uri}/request", capabilities=profile.provided
    )


def publish_all(backend, profiles) -> None:
    for profile in profiles:
        backend.publish(profile)


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestDiscoveryBackendConformance:
    def test_satisfies_protocol(self, backend, profiles):
        assert isinstance(backend, DiscoveryBackend)

    def test_publish_then_query_finds_service(self, backend, profiles):
        publish_all(backend, profiles)
        for profile in profiles:
            matches = backend.query(exact_request(profile))
            assert matches, f"{backend.describe()}: no match for {profile.uri}"
            assert all(isinstance(m, DirectoryMatch) for m in matches)
            assert any(m.service_uri == profile.uri for m in matches)
            # Distances are sortable ints, best-first.
            distances = [m.distance for m in matches]
            assert all(isinstance(d, int) for d in distances)
            assert distances == sorted(distances)

    def test_query_batch_matches_query(self, backend, profiles):
        publish_all(backend, profiles)
        requests = [exact_request(profile) for profile in profiles]
        batched = backend.query_batch(requests)
        assert len(batched) == len(requests)
        for request, rows in zip(requests, batched):
            assert rows == backend.query(request)

    def test_publish_batch_counts(self, backend, profiles):
        assert backend.publish_batch(profiles) == len(profiles)
        assert backend.capability_count > 0

    def test_unpublish_returns_entry_count(self, backend, profiles):
        publish_all(backend, profiles)
        victim = profiles[0]
        removed = backend.unpublish(victim.uri)
        assert isinstance(removed, int) and removed > 0
        # Idempotent: a second withdrawal removes nothing.
        assert backend.unpublish(victim.uri) == 0
        assert backend.unpublish("urn:никто:missing") == 0
        matches = backend.query(exact_request(victim))
        assert all(m.service_uri != victim.uri for m in matches)
        # The other services are untouched.
        survivor = profiles[1]
        assert any(
            m.service_uri == survivor.uri
            for m in backend.query(exact_request(survivor))
        )

    def test_republish_after_unpublish(self, backend, profiles):
        publish_all(backend, profiles)
        victim = profiles[0]
        backend.unpublish(victim.uri)
        backend.publish(victim)
        assert any(
            m.service_uri == victim.uri
            for m in backend.query(exact_request(victim))
        )

    def test_capability_count_tracks_publications(self, backend, profiles):
        assert backend.capability_count == 0
        publish_all(backend, profiles)
        populated = backend.capability_count
        assert populated >= len(profiles)  # at least one entry per service
        backend.unpublish(profiles[0].uri)
        assert backend.capability_count < populated

    def test_describe_mentions_population(self, backend, profiles):
        publish_all(backend, profiles)
        description = backend.describe()
        assert isinstance(description, str) and description

    def test_describe_info_schema(self, backend, profiles):
        """The normalized structured summary: every backend fills the same
        four fields, and the counters agree with the backend's state."""
        publish_all(backend, profiles)
        info = backend.describe_info()
        assert set(info) == {"kind", "services", "capability_count", "index"}
        assert info["kind"] == type(backend).__name__
        assert info["services"] == len(profiles)
        assert isinstance(info["capability_count"], int)
        assert info["capability_count"] == backend.capability_count
        assert info["capability_count"] >= len(profiles)
        assert isinstance(info["index"], str) and info["index"]
        # describe() renders the same numbers (no drifting dual formats).
        first_line = backend.describe().splitlines()[0]
        assert info["kind"] in first_line
        assert f"{info['services']} services" in first_line
        assert str(info["capability_count"]) in first_line

    def test_canonical_surface_emits_no_warnings(self, backend, profiles):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            publish_all(backend, profiles)
            backend.query(exact_request(profiles[0]))
            backend.query_batch([exact_request(profiles[1])])
            backend.unpublish(profiles[0].uri)
            _ = backend.capability_count
            backend.describe()
            backend.describe_info()


class TestShimsRemoved:
    """The deprecated pre-unification signatures are gone for good.

    ``publish``/``query`` accept only the canonical profile/request
    types now; raw WSDL and bare capabilities must use the explicit
    ``publish_wsdl`` / ``query_wsdl`` / ``query_capability`` spellings.
    The misuse failure mode is an immediate ``AttributeError`` from the
    semantic accessors the canonical path calls — not a silent
    wrong-type match.
    """

    def test_syntactic_rejects_raw_wsdl_forms(self, small_workload):
        registry = SyntacticRegistry()
        profile = small_workload.make_service(0)
        twin = ServiceWorkload.wsdl_twin(profile)
        with pytest.raises(AttributeError):
            registry.publish(twin)
        request = ServiceWorkload.wsdl_request_for(profile)
        with pytest.raises(AttributeError):
            registry.query(request)
        # The explicit raw-WSDL spellings are the supported path.
        registry.publish_wsdl(twin)
        assert any(d.uri == profile.uri for d in registry.query_wsdl(request))

    def test_annotated_rejects_bare_capability(self, small_workload):
        registry = AnnotatedTaxonomyRegistry(small_workload.taxonomy)
        profile = small_workload.make_service(0)
        registry.publish(profile)
        capability = profile.provided[0]
        with pytest.raises(AttributeError):
            registry.query(capability)
        ranked = registry.query_capability(capability)
        assert any(r.service_uri == profile.uri for r in ranked)

"""Shared fixtures: paper ontologies, workloads, code tables.

Session-scoped where construction is expensive (classification, encoding)
and the object is immutable in practice; tests that mutate build their own.
"""

from __future__ import annotations

import pytest

from repro.core.codes import CodeTable
from repro.ontology.generator import media_home_ontologies
from repro.ontology.reasoner import Reasoner
from repro.ontology.registry import OntologyRegistry
from repro.services.generator import ServiceWorkload, WorkloadShape
from repro.ontology.generator import OntologyShape

MEDIA_NS = "http://repro.example.org/media"


def media_uri(ontology: str, name: str) -> str:
    """Concept URI in the Fig. 1 media ontologies."""
    return f"{MEDIA_NS}/{ontology}#{name}"


@pytest.fixture(scope="session")
def media_ontologies():
    """The paper's Fig. 1 ontologies: (resources, servers)."""
    return media_home_ontologies(MEDIA_NS)


@pytest.fixture(scope="session")
def media_taxonomy(media_ontologies):
    """Classified Fig. 1 ontologies."""
    return Reasoner().load(list(media_ontologies)).classify()


@pytest.fixture(scope="session")
def media_registry(media_ontologies):
    """Registry holding the Fig. 1 ontologies."""
    return OntologyRegistry(list(media_ontologies))


@pytest.fixture(scope="session")
def media_table(media_registry):
    """Code table over the Fig. 1 ontologies."""
    return CodeTable(media_registry)


@pytest.fixture(scope="session")
def small_workload():
    """A compact §5-style workload (fewer/smaller ontologies for speed)."""
    shape = WorkloadShape(
        ontology_count=6,
        ontology_shape=OntologyShape(concepts=25, properties=6),
        ontologies_per_service=2,
        inputs_per_capability=2,
        outputs_per_capability=2,
        properties_per_capability=1,
    )
    return ServiceWorkload(shape=shape, seed=11)


@pytest.fixture(scope="session")
def small_registry(small_workload):
    """Registry over the small workload's ontologies."""
    return OntologyRegistry(small_workload.ontologies)


@pytest.fixture(scope="session")
def small_table(small_registry):
    """Code table over the small workload's ontologies."""
    return CodeTable(small_registry)

"""Tests for the Bloom filter, including the no-false-negative property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bloom import BloomFilter, optimal_parameters


class TestBasics:
    def test_added_item_is_member(self):
        bloom = BloomFilter(m=128, k=3)
        bloom.add("http://example.org/onto1")
        assert "http://example.org/onto1" in bloom

    def test_fresh_filter_is_empty(self):
        bloom = BloomFilter(m=128, k=3)
        assert "anything" not in bloom
        assert bloom.fill_ratio == 0.0

    def test_update_adds_all(self):
        bloom = BloomFilter(m=256, k=4)
        items = [f"item-{i}" for i in range(20)]
        bloom.update(items)
        assert all(item in bloom for item in items)

    def test_might_contain_alias(self):
        bloom = BloomFilter(m=64, k=2)
        bloom.add("x")
        assert bloom.might_contain("x")

    def test_clear(self):
        bloom = BloomFilter(m=64, k=2)
        bloom.add("x")
        bloom.clear()
        assert "x" not in bloom
        assert bloom.approximate_items == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(m=0, k=1)
        with pytest.raises(ValueError):
            BloomFilter(m=8, k=0)


class TestNoFalseNegatives:
    @given(st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_every_added_item_found(self, items):
        bloom = BloomFilter(m=64, k=3)
        bloom.update(items)
        assert all(item in bloom for item in items)

    @given(
        st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_no_false_negatives_any_parameters(self, items, m, k):
        bloom = BloomFilter(m=m, k=k)
        bloom.update(items)
        assert all(item in bloom for item in items)


class TestFalsePositiveRate:
    def test_rate_reasonable_at_design_capacity(self):
        m, k = optimal_parameters(100, 0.01)
        bloom = BloomFilter(m=m, k=k)
        bloom.update(f"member-{i}" for i in range(100))
        false_hits = sum(1 for i in range(10_000) if f"absent-{i}" in bloom)
        assert false_hits / 10_000 < 0.05  # generous bound over the 1% design

    def test_probability_estimate_tracks_fill(self):
        bloom = BloomFilter(m=64, k=2)
        assert bloom.false_positive_probability() == 0.0
        bloom.update(f"x{i}" for i in range(64))
        assert bloom.false_positive_probability() > 0.3


class TestUnion:
    def test_union_contains_both_sides(self):
        a = BloomFilter(m=128, k=3)
        b = BloomFilter(m=128, k=3)
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged and "right" in merged

    def test_union_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(m=128, k=3).union(BloomFilter(m=64, k=3))
        with pytest.raises(ValueError):
            BloomFilter(m=128, k=3).union(BloomFilter(m=128, k=4))

    def test_copy_is_independent(self):
        a = BloomFilter(m=64, k=2)
        a.add("x")
        b = a.copy()
        b.add("y")
        assert "y" not in a and "y" in b


class TestSerialization:
    def test_roundtrip(self):
        bloom = BloomFilter(m=200, k=4)
        bloom.update(f"onto-{i}" for i in range(30))
        restored = BloomFilter.from_bytes(bloom.to_bytes(), m=200, k=4)
        assert restored == bloom
        assert all(f"onto-{i}" in restored for i in range(30))

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\xff\xff", m=8, k=2)

    @given(st.lists(st.text(min_size=1, max_size=10), max_size=20))
    @settings(max_examples=50)
    def test_roundtrip_property(self, items):
        bloom = BloomFilter(m=96, k=3)
        bloom.update(items)
        assert BloomFilter.from_bytes(bloom.to_bytes(), 96, 3) == bloom


class TestOptimalParameters:
    def test_known_sizing(self):
        m, k = optimal_parameters(1000, 0.01)
        assert 9000 < m < 10500  # ≈ 9.6 bits/item for 1%
        assert k in (6, 7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(10, 0.0)
        with pytest.raises(ValueError):
            optimal_parameters(10, 1.0)

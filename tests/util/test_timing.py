"""Tests for phase timing instrumentation."""

import pytest

from repro.util.timing import PhaseTimer, TimingReport


class TestPhaseTimer:
    def test_phase_records_positive_duration(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            sum(range(1000))
        assert timer.seconds("work") > 0

    def test_phases_accumulate(self):
        timer = PhaseTimer()
        timer.record("parse", 0.5)
        timer.record("parse", 0.25)
        assert timer.seconds("parse") == pytest.approx(0.75)

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        timer.record("b", 3.0)
        assert timer.total() == pytest.approx(4.0)

    def test_share(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        timer.record("b", 3.0)
        assert timer.share("b") == pytest.approx(0.75)

    def test_share_of_empty_timer_is_zero(self):
        assert PhaseTimer().share("missing") == 0.0

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().seconds("nope") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().record("a", -0.1)

    def test_phase_records_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("failing"):
                raise RuntimeError("boom")
        assert timer.seconds("failing") >= 0


class TestTimingReport:
    def _timer(self, **phases):
        timer = PhaseTimer()
        for name, value in phases.items():
            timer.record(name, value)
        return timer

    def test_mean_over_runs(self):
        report = TimingReport()
        report.add(self._timer(parse=1.0))
        report.add(self._timer(parse=3.0))
        assert report.mean("parse") == pytest.approx(2.0)

    def test_missing_phase_counts_zero(self):
        report = TimingReport()
        report.add(self._timer(parse=2.0))
        report.add(self._timer(classify=2.0))
        assert report.mean("parse") == pytest.approx(1.0)

    def test_phase_order_is_first_seen(self):
        report = TimingReport()
        report.add(self._timer(parse=1.0, classify=1.0))
        report.add(self._timer(match=1.0))
        assert report.phases() == ["parse", "classify", "match"]

    def test_mean_share(self):
        report = TimingReport()
        report.add(self._timer(load=3.0, match=1.0))
        assert report.mean_share("load") == pytest.approx(0.75)

    def test_table_renders_all_phases(self):
        report = TimingReport()
        report.add(self._timer(parse=0.010, match=0.002))
        table = report.table()
        assert "parse" in table and "match" in table and "TOTAL" in table

    def test_empty_report(self):
        report = TimingReport()
        assert report.mean_total() == 0.0
        assert report.mean("x") == 0.0

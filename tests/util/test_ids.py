"""Tests for URI helpers."""

import pytest

from repro.util.ids import (
    InvalidUriError,
    join_namespace,
    make_urn,
    uri_fragment,
    validate_uri,
)


class TestValidateUri:
    def test_accepts_http_uri(self):
        assert validate_uri("http://example.org/x") == "http://example.org/x"

    def test_accepts_urn(self):
        assert validate_uri("urn:repro:service:1") == "urn:repro:service:1"

    def test_rejects_empty(self):
        with pytest.raises(InvalidUriError):
            validate_uri("")

    def test_rejects_none(self):
        with pytest.raises(InvalidUriError):
            validate_uri(None)

    def test_rejects_whitespace(self):
        with pytest.raises(InvalidUriError):
            validate_uri("http://example.org/a b")

    def test_rejects_schemeless(self):
        with pytest.raises(InvalidUriError):
            validate_uri("no-scheme-here/path")


class TestUriFragment:
    def test_hash_fragment(self):
        assert uri_fragment("http://example.org/onto#Stream") == "Stream"

    def test_path_tail(self):
        assert uri_fragment("http://example.org/onto/Stream") == "Stream"

    def test_urn_tail(self):
        assert uri_fragment("urn:repro:service:42") == "42"

    def test_trailing_slash(self):
        assert uri_fragment("http://example.org/onto/Stream/") == "Stream"


class TestMakeUrn:
    def test_explicit_name(self):
        assert make_urn("service", "printer") == "urn:repro:service:printer"

    def test_generated_names_unique(self):
        assert make_urn("service") != make_urn("service")

    def test_generated_is_valid(self):
        validate_uri(make_urn("capability"))


class TestJoinNamespace:
    def test_plain_namespace_gets_hash(self):
        assert join_namespace("http://x.org/o", "C") == "http://x.org/o#C"

    def test_hash_suffix_respected(self):
        assert join_namespace("http://x.org/o#", "C") == "http://x.org/o#C"

    def test_slash_suffix_respected(self):
        assert join_namespace("http://x.org/o/", "C") == "http://x.org/o/C"

"""Version-keyed LRU caches (the query engine's distance memo)."""

from __future__ import annotations

from repro.util.cache import (
    MISS,
    CacheStats,
    DistanceCache,
    RequestCache,
    VersionedLruCache,
    document_key,
)


class TestVersionedLruCache:
    def test_get_put_roundtrip(self):
        cache = VersionedLruCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "fallback") == "fallback"
        assert "a" in cache and "b" not in cache

    def test_rejects_nonpositive_maxsize(self):
        import pytest

        with pytest.raises(ValueError):
            VersionedLruCache(maxsize=0)

    def test_lru_eviction_order(self):
        cache = VersionedLruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_put_existing_key_does_not_evict(self):
        cache = VersionedLruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_version_change_flushes(self):
        cache = VersionedLruCache()
        cache.ensure_version(("t", 1))
        cache.put("a", 1)
        cache.ensure_version(("t", 1))  # same version: keep
        assert cache.get("a") == 1
        cache.ensure_version(("t", 2))  # new version: flush
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_version_change_on_empty_cache_not_counted(self):
        cache = VersionedLruCache()
        cache.ensure_version(1)
        cache.ensure_version(2)
        assert cache.stats.invalidations == 0

    def test_clear_keeps_counters(self):
        cache = VersionedLruCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestDistanceCache:
    def test_miss_sentinel_distinguishes_cached_none(self):
        cache = DistanceCache()
        assert cache.lookup("x", "y") is MISS
        cache.store("x", "y", None)  # "does not subsume" is a real result
        assert cache.lookup("x", "y") is None
        cache.store("x", "z", 3)
        assert cache.lookup("x", "z") == 3

    def test_pairs_are_directional(self):
        cache = DistanceCache()
        cache.store("a", "b", 2)
        assert cache.lookup("b", "a") is MISS

    def test_stats_hit_rate(self):
        cache = DistanceCache()
        cache.store("a", "b", 1)
        cache.lookup("a", "b")
        cache.lookup("a", "c")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestRequestCache:
    def test_content_addressing(self):
        cache = RequestCache()
        cache.put_document("<doc/>", "parsed")
        assert cache.get_document("<doc/>") == "parsed"
        # Same text, different str object: same content key.
        other = "<doc" + "/>"
        assert document_key(other) == document_key("<doc/>")
        assert cache.get_document(other) == "parsed"
        assert cache.get_document("<other/>", MISS) is MISS

    def test_cached_none_distinct_from_miss(self):
        cache = RequestCache()
        cache.put_document("<bad", None)  # "unparseable" is a real result
        sentinel = object()
        assert cache.get_document("<bad", sentinel) is None

    def test_version_flush(self):
        cache = RequestCache()
        cache.ensure_version((1, 7))
        cache.put_document("<doc/>", "parsed")
        cache.ensure_version((1, 8))  # §3.2 code-table bump
        assert cache.get_document("<doc/>", MISS) is MISS

    def test_keys_are_fixed_size_digests(self):
        key = document_key("x" * 100_000)
        assert isinstance(key, bytes) and len(key) == 16


class TestCacheStats:
    def test_hit_rate_zero_when_untouched(self):
        assert CacheStats().hit_rate == 0.0

"""The paper's claims as executable assertions — a reproduction checklist.

Each test quotes a sentence of the paper and asserts the corresponding
behaviour of this implementation (on fast, reduced-scale variants; the
full-scale timing shapes live in ``benchmarks/``).  Reading this module
top to bottom is reading the paper's claims being checked.
"""

import pytest

from repro.core.capability_graph import CapabilityDag, QueryMode
from repro.core.codes import CodeTable, StaleCodesError
from repro.core.directory import SemanticDirectory
from repro.core.matching import CodeMatcher, TaxonomyMatcher
from repro.ontology.registry import OntologyRegistry
from repro.services.profile import Capability, ServiceProfile, ServiceRequest

MEDIA = "http://repro.example.org/media"


def r(name):
    return f"{MEDIA}/resources#{name}"


def s(name):
    return f"{MEDIA}/servers#{name}"


class TestSection1Claims:
    """§1 — motivation."""

    def test_syntactic_discovery_needs_exact_agreement(self):
        """'WSDL-based service discovery relies on the syntactic
        conformance of the required interfaces with the provided ones.'"""
        from repro.registry.syntactic import SyntacticRegistry
        from repro.services.wsdl import WsdlDescription, WsdlOperation, WsdlRequest

        registry = SyntacticRegistry()
        registry.publish_wsdl(
            WsdlDescription(
                uri="urn:x:svc:1",
                port_type="Media",
                operations=(WsdlOperation("getVideoStream", ("title",), ("stream",)),),
            )
        )
        same = WsdlRequest(
            uri="urn:x:r1",
            operations=(WsdlOperation("getVideoStream", ("title",), ("stream",)),),
        )
        synonym = WsdlRequest(
            uri="urn:x:r2",
            operations=(WsdlOperation("fetchVideoStream", ("title",), ("stream",)),),
        )
        assert registry.query_wsdl(same)
        assert not registry.query_wsdl(synonym)

    def test_semantic_discovery_survives_vocabulary_mismatch(self, media_table):
        """'Ontology-based semantic reasoning enables discovering ...
        services whose published provided functionalities match a required
        functionality, even if there is no syntactic conformance.'"""
        directory = SemanticDirectory(media_table)
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:streamer",
                name="Streamer",
                provided=(
                    Capability.build(
                        "urn:x:c:p",
                        "EmitMediaFlow",  # nothing in common with the request's names
                        inputs=[r("DigitalResource")],
                        outputs=[r("Stream")],
                        category=s("DigitalServer"),
                    ),
                ),
            )
        )
        request = ServiceRequest(
            uri="urn:x:req",
            capabilities=(
                Capability.build(
                    "urn:x:c:q",
                    "GetVideoStream",
                    inputs=[r("VideoResource")],
                    outputs=[r("VideoStream")],
                    category=s("VideoServer"),
                ),
            ),
        )
        assert directory.query(request)


class TestSection2Claims:
    """§2.3 — the matching relation and its worked example."""

    def test_match_means_substitutability(self, media_taxonomy):
        """'Match(C1, C2) ... allows identifying whether capability C1 is
        equivalent or includes capability C2, i.e., if C1 can substitute
        C2.'"""
        matcher = TaxonomyMatcher(media_taxonomy)
        generic = Capability.build(
            "urn:x:c:g", "SendDigitalStream",
            inputs=[r("DigitalResource")], outputs=[r("Stream")], category=s("DigitalServer"),
        )
        specific = Capability.build(
            "urn:x:c:s", "GetVideoStream",
            inputs=[r("VideoResource")], outputs=[r("VideoStream")], category=s("VideoServer"),
        )
        assert matcher.match(generic, specific)
        assert not matcher.match(specific, generic)

    def test_worked_example_distance_three(self, media_taxonomy):
        """'The relation Match(SendDigitalStream, GetVideoStream) holds,
        and the semantic distance between these capabilities is equal to
        3.'"""
        matcher = TaxonomyMatcher(media_taxonomy)
        provided = Capability.build(
            "urn:x:c:g", "SendDigitalStream",
            inputs=[r("DigitalResource")], outputs=[r("Stream")], category=s("DigitalServer"),
        )
        requested = Capability.build(
            "urn:x:c:s", "GetVideoStream",
            inputs=[r("VideoResource")], outputs=[r("VideoStream")], category=s("VideoServer"),
        )
        assert matcher.semantic_distance(provided, requested) == 3

    def test_distance_null_without_subsumption(self, media_taxonomy):
        """'If concept1 does not subsume concept2 ... the distance ... does
        not have a numeric value.'"""
        assert media_taxonomy.distance(r("VideoResource"), r("GameResource")) is None

    def test_reasoning_dominates_online_match(self, small_workload):
        """'The time to load and classify ontologies takes from 76% to 78%
        of the total time for matching' (shape: reasoning dominates)."""
        from repro.ontology.owl_xml import ontology_to_xml
        from repro.registry.naive_semantic import OnlineMatchmaker
        from repro.services.xml_codec import profile_to_xml, request_to_xml

        profile = small_workload.make_service(0)
        request = small_workload.matching_request(profile)
        report = OnlineMatchmaker().match_documents(
            profile_to_xml(profile),
            request_to_xml(request),
            [ontology_to_xml(o) for o in small_workload.ontologies],
        )
        assert report.reasoning_share > 0.5


class TestSection3Claims:
    """§3 — the two optimizations."""

    def test_semantic_reasoning_reduces_to_numeric_comparison(self, media_table):
        """'To infer whether a concept C1 ... subsumes another concept C2
        ... it is sufficient to compare whether I1 is included in I2.'"""
        over = media_table.code(r("DigitalResource"))
        under = media_table.code(r("VideoResource"))
        # Pure numeric containment — no taxonomy involved.
        assert over.subsumes(under)
        assert not under.subsumes(over)

    def test_codes_are_versioned(self, media_table):
        """'Service advertisements and service requests specify the version
        of the codes being used.'"""
        with pytest.raises(StaleCodesError):
            media_table.resolve_annotations({}, version=media_table.version + 1)

    def test_equivalent_capabilities_share_a_vertex(self, media_taxonomy):
        """'If both Match(C1, C2) and Match(C2, C1) hold and
        SemanticDistance ... = 0, then C1 and C2 will be represented by a
        single vertex.'"""
        matcher = TaxonomyMatcher(media_taxonomy)
        dag = CapabilityDag()
        twin = dict(inputs=[r("DigitalResource")], outputs=[r("Stream")], category=s("DigitalServer"))
        a = dag.insert(Capability.build("urn:x:c:a", "A", **twin), "svc1", matcher)
        b = dag.insert(Capability.build("urn:x:c:b", "B", **twin), "svc2", matcher)
        assert a == b

    def test_roots_are_most_generic(self, media_taxonomy):
        """'These capabilities [roots] are said to be more generic ...
        their provided outputs subsume the outputs of other
        capabilities.'"""
        matcher = TaxonomyMatcher(media_taxonomy)
        dag = CapabilityDag()
        dag.insert(Capability.build("urn:x:c:g", "G", outputs=[r("DigitalResource")]), "a", matcher)
        dag.insert(Capability.build("urn:x:c:s", "S", outputs=[r("VideoResource")]), "b", matcher)
        root = dag.roots()[0].representative
        leaf = dag.leaves()[0].representative
        assert media_taxonomy.subsumes(next(iter(root.outputs)), next(iter(leaf.outputs)))

    def test_query_filters_graphs_by_ontology_index(self, media_table):
        """'This [the request's ontology] allows to filter out the DAG2 as
        it is indexed with only the ontology O3.'"""
        directory = SemanticDirectory(media_table)
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:1",
                name="S",
                provided=(Capability.build("urn:x:c:1", "C", outputs=[r("Stream")]),),
            )
        )
        foreign = ServiceRequest(
            uri="urn:x:req:f",
            capabilities=(
                Capability.build("urn:x:c:f", "F", outputs=["http://other.org/o#X"]),
            ),
        )
        assert directory.query(foreign) == []

    def test_fewer_matches_than_flat_scan(self, small_workload, small_table):
        """'It is sufficient to perform a semantic match with a subset of
        the capabilities ... rather than ... all the capabilities hosted by
        a directory.'"""
        directory = SemanticDirectory(small_table)
        services = small_workload.make_services(30)
        for profile in services:
            directory.publish(profile)
        request = small_workload.matching_request(services[0])
        matcher = CodeMatcher(table=small_table)
        for capability in request.capabilities:
            for graph in directory._candidate_graphs(capability):
                graph.query(capability, matcher, QueryMode.GREEDY)
        assert matcher.stats.capability_matches < directory.capability_count

    def test_insertion_work_independent_of_directory_size(self, small_workload, small_table):
        """'The number of semantic matches performed ... to insert a
        capability depends neither on the total number of services on the
        directory nor on the number of graphs.'"""
        counts = []
        for size in (10, 40):
            directory = SemanticDirectory(small_table)
            for index in range(size):
                directory.publish(small_workload.make_service(index))
            matcher = CodeMatcher(table=small_table)
            probe = small_workload.make_service(500).provided[0]
            graph = directory._graphs.setdefault(probe.ontologies(), CapabilityDag())
            graph.insert(probe, "urn:x:probe", matcher)
            counts.append(matcher.stats.capability_matches)
        # Insert work tracks the target graph, not the directory size.
        assert counts[1] <= counts[0] + directory.capability_count // 4


class TestSection4Claims:
    """§4 — the distributed protocol."""

    def test_bloom_summary_never_misses_cached_content(self, small_workload):
        """'If there is a bit that is not set to 1, the directory will not
        contain the required capability' (and the contrapositive: cached
        content is always admitted)."""
        from repro.core.summaries import DirectorySummary

        summary = DirectorySummary()
        capabilities = [small_workload.make_service(i).provided[0] for i in range(20)]
        for capability in capabilities:
            summary.add_capability(capability)
        for capability in capabilities:
            assert summary.might_hold(capability)

    def test_elections_produce_directories_and_coverage(self, small_workload):
        """'This mechanism allows electing directories with the best
        physical properties and distributing them efficiently.'"""
        from repro.network.election import ElectionConfig
        from repro.protocols.deployment import Deployment, DeploymentConfig

        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(
                node_count=16,
                protocol="sariadne",
                radio_range=200.0,
                election=ElectionConfig(
                    advert_interval=5.0,
                    advert_hops=2,
                    directory_timeout=10.0,
                    check_interval=2.0,
                    reply_window=1.0,
                    election_hops=2,
                ),
                seed=2,
            ),
            table=table,
        )
        assert deployment.run_until_directories(minimum=1) >= 1
        deployment.sim.run(until=deployment.sim.now + 60.0)
        assert deployment.coverage() == 1.0


class TestSection5Claims:
    """§5 — the headline results (shape at reduced scale; full scale in
    benchmarks/)."""

    def test_sariadne_best_answer_equals_exhaustive(self, small_workload, small_table):
        """'Selecting the advertisement whose description best fits the
        user's requirements' — the optimized query loses nothing on this
        workload."""
        from repro.core.directory import FlatDirectory

        classified = SemanticDirectory(small_table)
        flat = FlatDirectory(small_table)
        services = small_workload.make_services(25)
        for profile in services:
            classified.publish(profile)
            flat.publish(profile)
        for index in (0, 7, 19):
            request = small_workload.matching_request(services[index])
            optimized = classified.query(request)
            exhaustive = flat.query(request)
            assert bool(optimized) == bool(exhaustive)
            if optimized:
                assert optimized[0].distance == exhaustive[0].distance

    def test_publish_once_parse_once(self, small_workload, small_table):
        """'Using S-Ariadne, the services are parsed once at the publishing
        phase' — queries never re-parse stored advertisements."""
        from repro.services.xml_codec import profile_to_xml

        directory = SemanticDirectory(small_table)
        for index in range(10):
            profile = small_workload.make_service(index)
            directory.publish_xml(
                profile_to_xml(
                    profile,
                    annotations=small_table.annotate(profile.provided),
                    codes_version=small_table.version,
                )
            )
        parse_after_publish = directory.timer.seconds("parse")
        request = small_workload.matching_request(small_workload.make_service(3))
        for _ in range(20):
            directory.query(request)  # parsed requests are passed in-memory
        assert directory.timer.seconds("parse") == parse_after_publish

"""Tests for the §2.3 Match relation and SemanticDistance, including the
paper's worked example (Fig. 1, total distance 3) and the transitivity
property the capability DAG relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import CodeMatcher, TaxonomyMatcher
from repro.services.profile import Capability

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


@pytest.fixture()
def send_digital_stream() -> Capability:
    """The workstation's provided capability (Fig. 1)."""
    return Capability.build(
        "urn:x:cap:SendDigitalStream",
        "SendDigitalStream",
        inputs=[r("DigitalResource")],
        outputs=[r("Stream")],
        category=s("DigitalServer"),
    )


@pytest.fixture()
def get_video_stream() -> Capability:
    """The PDA's required capability (Fig. 1)."""
    return Capability.build(
        "urn:x:cap:GetVideoStream",
        "GetVideoStream",
        inputs=[r("VideoResource")],
        outputs=[r("VideoStream")],
        category=s("VideoServer"),
    )


@pytest.fixture()
def provide_game() -> Capability:
    """The workstation's second capability (Fig. 1)."""
    return Capability.build(
        "urn:x:cap:ProvideGame",
        "ProvideGame",
        inputs=[r("GameResource")],
        outputs=[r("Stream")],
        category=s("GameServer"),
    )


@pytest.fixture(params=["taxonomy", "codes"])
def matcher(request, media_taxonomy, media_table):
    """Both oracles must implement identical semantics."""
    if request.param == "taxonomy":
        return TaxonomyMatcher(media_taxonomy)
    return CodeMatcher(table=media_table)


class TestWorkedExample:
    def test_match_holds(self, matcher, send_digital_stream, get_video_stream):
        assert matcher.match(send_digital_stream, get_video_stream)

    def test_distance_is_three(self, matcher, send_digital_stream, get_video_stream):
        """'The semantic distance between these capabilities is equal to 3'
        — 1 (input) + 1 (output) + 1 (category)."""
        assert matcher.semantic_distance(send_digital_stream, get_video_stream) == 3

    def test_reverse_does_not_match(self, matcher, send_digital_stream, get_video_stream):
        # GetVideoStream cannot substitute SendDigitalStream.
        assert not matcher.match(get_video_stream, send_digital_stream)

    def test_provide_game_does_not_match_video_request(
        self, matcher, provide_game, get_video_stream
    ):
        # GameServer does not subsume VideoServer; inputs mismatch too.
        assert not matcher.match(provide_game, get_video_stream)

    def test_exact_match_distance_zero(self, matcher, get_video_stream):
        twin = Capability.build(
            "urn:x:cap:twin",
            "Twin",
            inputs=[r("VideoResource")],
            outputs=[r("VideoStream")],
            category=s("VideoServer"),
        )
        assert matcher.semantic_distance(twin, get_video_stream) == 0

    def test_send_digital_more_generic_than_provide_game(
        self, matcher, send_digital_stream, provide_game
    ):
        """§3.3: 'SendDigitalStream is more generic than ProvideGame'."""
        assert matcher.match(send_digital_stream, provide_game)
        assert not matcher.match(provide_game, send_digital_stream)

    def test_pairings_reported(self, matcher, send_digital_stream, get_video_stream):
        outcome = matcher.match_outcome(send_digital_stream, get_video_stream)
        kinds = {p[0] for p in outcome.pairings}
        assert kinds == {"input", "output", "property"}
        assert all(p[3] == 1 for p in outcome.pairings)


class TestMatchSemantics:
    def test_provider_missing_output_fails(self, matcher):
        provided = Capability.build("urn:x:p", "P", outputs=[r("Stream")])
        requested = Capability.build(
            "urn:x:q", "Q", outputs=[r("Stream"), r("Title")]
        )
        assert not matcher.match(provided, requested)

    def test_provider_extra_outputs_ok(self, matcher):
        provided = Capability.build("urn:x:p", "P", outputs=[r("Stream"), r("Title")])
        requested = Capability.build("urn:x:q", "Q", outputs=[r("Stream")])
        assert matcher.match(provided, requested)

    def test_provider_input_without_requester_offer_fails(self, matcher):
        provided = Capability.build("urn:x:p", "P", inputs=[r("Title")], outputs=[r("Stream")])
        requested = Capability.build("urn:x:q", "Q", outputs=[r("Stream")])
        assert not matcher.match(provided, requested)

    def test_requester_extra_inputs_ok(self, matcher):
        provided = Capability.build("urn:x:p", "P", outputs=[r("Stream")])
        requested = Capability.build(
            "urn:x:q", "Q", inputs=[r("Title"), r("GameResource")], outputs=[r("Stream")]
        )
        assert matcher.match(provided, requested)

    def test_empty_capabilities_match_trivially(self, matcher):
        provided = Capability.build("urn:x:p", "P")
        requested = Capability.build("urn:x:q", "Q")
        assert matcher.semantic_distance(provided, requested) == 0

    def test_unknown_concept_fails_gracefully(self, matcher):
        provided = Capability.build("urn:x:p", "P", outputs=["http://nowhere.org/o#X"])
        requested = Capability.build("urn:x:q", "Q", outputs=["http://nowhere.org/o#X"])
        # Unknown concepts cannot be proven to subsume: no match, no crash.
        assert not matcher.match(provided, requested)

    def test_distance_picks_minimum_partner(self, matcher):
        provided = Capability.build(
            "urn:x:p", "P", outputs=[r("Stream"), r("VideoStream")]
        )
        requested = Capability.build("urn:x:q", "Q", outputs=[r("VideoStream")])
        # VideoStream matched by provided VideoStream at distance 0, not by
        # Stream at distance 1.
        assert matcher.semantic_distance(provided, requested) == 0

    def test_stats_counted(self, media_taxonomy, send_digital_stream, get_video_stream):
        matcher = TaxonomyMatcher(media_taxonomy)
        matcher.match(send_digital_stream, get_video_stream)
        assert matcher.stats.capability_matches == 1
        assert matcher.stats.concept_comparisons >= 3


class TestOraclesAgree:
    def test_taxonomy_and_codes_identical_on_workload(self, small_workload, small_table):
        taxonomy_matcher = TaxonomyMatcher(small_workload.taxonomy)
        code_matcher = CodeMatcher(table=small_table)
        services = small_workload.make_services(20)
        for i, provider in enumerate(services):
            request = small_workload.matching_request(provider)
            for profile in services:
                for cap in profile.provided:
                    for req_cap in request.capabilities:
                        assert taxonomy_matcher.match(cap, req_cap) == code_matcher.match(
                            cap, req_cap
                        ), (i, profile.uri)


class TestTransitivity:
    """Match transitivity is what makes the DAG prunings sound (§3.3)."""

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_match_transitive_on_random_triples(self, small_workload, seed):
        import random

        taxonomy = small_workload.taxonomy
        matcher = TaxonomyMatcher(taxonomy)
        rng = random.Random(seed)
        services = [small_workload.make_service(rng.randrange(60)) for _ in range(3)]
        caps = [svc.provided[0] for svc in services]
        a, b, c = caps
        if matcher.match(a, b) and matcher.match(b, c):
            assert matcher.match(a, c)

    def test_match_reflexive(self, matcher, send_digital_stream):
        assert matcher.match(send_digital_stream, send_digital_stream)
        assert matcher.semantic_distance(send_digital_stream, send_digital_stream) == 0


class TestCodeMatcherConstruction:
    def test_requires_some_source(self):
        with pytest.raises(ValueError):
            CodeMatcher()

    def test_extra_codes_without_table(self, media_table, get_video_stream):
        annotations = media_table.annotate([get_video_stream])
        codes = media_table.resolve_annotations(annotations, media_table.version)
        matcher = CodeMatcher(extra_codes=codes)
        assert matcher.match(get_video_stream, get_video_stream)

    def test_extra_codes_extend_table(self, media_table):
        # A concept only present in embedded codes is still matchable.
        code = media_table.code(r("Stream"))
        matcher = CodeMatcher(table=None, extra_codes={r("Stream"): code})
        provided = Capability.build("urn:x:p", "P", outputs=[r("Stream")])
        requested = Capability.build("urn:x:q", "Q", outputs=[r("Stream")])
        assert matcher.match(provided, requested)

"""Experiment E7: float64 capacity of the encoding (§3.2's scalability).

The paper reports, for p=2 and k=5 with 64-bit doubles, a maximum of 1071
entries on the first level and 462 nesting levels *for its layout*.  Our
layout differs in constants but must exhibit the same order of magnitude:
hundreds of distinguishable siblings per level and hundreds of nesting
levels — and the exact-arithmetic mode must remove the limits.
"""

import pytest

from repro.core.encoding import (
    IntervalEncoder,
    Interval,
    first_level_capacity,
    nesting_capacity,
)


class TestFirstLevelCapacity:
    def test_same_order_as_paper(self):
        capacity = first_level_capacity(p=2, k=5)
        # Paper: 1071 entries on its layout; ours must be in the hundreds+.
        assert capacity >= 200, capacity

    def test_capacity_intervals_are_valid_and_disjoint(self):
        encoder = IntervalEncoder()
        unit = Interval(0.0, 1.0)
        capacity = first_level_capacity()
        probe_indices = [0, 1, capacity // 2, capacity - 2, capacity - 1]
        intervals = [encoder.child_interval(unit, i) for i in probe_indices]
        for i, a in enumerate(intervals):
            assert a.width > 0
            for b in intervals[i + 1 :]:
                assert not a.overlaps(b)

    def test_larger_k_gives_more_entries(self):
        assert first_level_capacity(p=2, k=10) > first_level_capacity(p=2, k=5)

    def test_larger_p_gives_fewer_entries(self):
        assert first_level_capacity(p=4, k=5) < first_level_capacity(p=2, k=5)


class TestNestingCapacity:
    def test_same_order_as_paper(self):
        depth = nesting_capacity(p=2, k=5)
        # Paper: 462 levels on its layout; ours must be in the hundreds.
        assert depth >= 200, depth

    def test_depth_limited_by_denormals(self):
        # Each first-slot nesting multiplies width by 1/(k·p) = 1/10, so
        # float64 (min denormal ~5e-324) bounds depth near 300.
        depth = nesting_capacity(p=2, k=5)
        assert depth <= 400, depth

    def test_smaller_slots_nest_less(self):
        assert nesting_capacity(p=4, k=5) < nesting_capacity(p=2, k=5)


class TestMeasuredValuesStable:
    """Pin the measured constants so regressions are visible; these are the
    numbers EXPERIMENTS.md reports against the paper's 1071 / 462."""

    def test_first_level_value(self):
        assert first_level_capacity(p=2, k=5) == pytest.approx(
            first_level_capacity(p=2, k=5)
        )  # deterministic
        capacity = first_level_capacity(p=2, k=5)
        assert 200 <= capacity <= 2000

    def test_nesting_value(self):
        depth = nesting_capacity(p=2, k=5)
        assert 250 <= depth <= 350

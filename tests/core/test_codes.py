"""Tests for code tables: numeric subsumption/distance, versioning, wire
format."""

import pytest

from repro.core.codes import CodeTable, ConceptCode, StaleCodesError, UnknownConceptError
from repro.core.encoding import IntervalEncoder
from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.model import THING
from repro.ontology.registry import OntologyRegistry
from repro.services.profile import Capability

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


class TestNumericSubsumption:
    def test_matches_taxonomy_on_media(self, media_table):
        taxonomy = media_table.taxonomy
        concepts = [c for c in taxonomy.concepts() if c != THING]
        for a in concepts:
            for b in concepts:
                assert media_table.subsumes(a, b) == taxonomy.subsumes(a, b), (a, b)

    def test_matches_taxonomy_on_random_dag(self):
        onto = generate_ontology(
            "http://x.org/codes",
            OntologyShape(concepts=60, properties=10, multi_parent_fraction=0.25),
            seed=7,
        )
        registry = OntologyRegistry([onto])
        table = CodeTable(registry)
        taxonomy = table.taxonomy
        concepts = [c for c in taxonomy.concepts() if c != THING]
        for a in concepts:
            for b in concepts:
                assert table.subsumes(a, b) == taxonomy.subsumes(a, b), (a, b)

    def test_thing_cases(self, media_table):
        assert media_table.subsumes(THING, r("Stream"))
        assert not media_table.subsumes(r("Stream"), THING)

    def test_unknown_concept_raises(self, media_table):
        with pytest.raises(UnknownConceptError):
            media_table.code("http://x.org/unknown#C")


class TestNumericDistance:
    def test_tree_distance_exact(self, media_table):
        # The media ontologies are trees: depth difference == level count.
        assert media_table.distance(r("DigitalResource"), r("VideoResource")) == 1
        assert media_table.distance(r("Resource"), r("VideoResource")) == 2
        assert media_table.distance(s("Server"), s("GameServer")) == 2

    def test_distance_none_when_not_subsuming(self, media_table):
        assert media_table.distance(r("VideoResource"), r("DigitalResource")) is None

    def test_distance_zero_on_self(self, media_table):
        assert media_table.distance(r("Stream"), r("Stream")) == 0

    def test_distance_from_thing_is_depth(self, media_table):
        assert media_table.distance(THING, r("VideoResource")) == 3

    def test_agrees_with_taxonomy_on_trees(self, media_table):
        taxonomy = media_table.taxonomy
        concepts = [c for c in taxonomy.concepts() if c != THING]
        for a in concepts:
            for b in concepts:
                assert media_table.distance(a, b) == taxonomy.distance(a, b), (a, b)


class TestVersioning:
    def test_version_tracks_registry_snapshot(self, media_ontologies):
        registry = OntologyRegistry(list(media_ontologies))
        table = CodeTable(registry)
        assert table.version == registry.snapshot_version

    def test_stale_codes_rejected(self, media_table):
        with pytest.raises(StaleCodesError):
            media_table.resolve_annotations({}, version=media_table.version + 1)

    def test_missing_version_rejected(self, media_table):
        with pytest.raises(StaleCodesError):
            media_table.resolve_annotations({}, version=None)

    def test_reencoding_after_evolution(self, media_ontologies):
        registry = OntologyRegistry(list(media_ontologies))
        old_table = CodeTable(registry)
        extra = generate_ontology("http://x.org/new", OntologyShape(concepts=5), seed=0)
        registry.register(extra)  # ontology evolution
        new_table = CodeTable(registry)
        assert new_table.version > old_table.version
        annotations = old_table.annotate(
            [Capability.build("urn:x:cap", "C", outputs=[r("Stream")])]
        )
        with pytest.raises(StaleCodesError):
            new_table.resolve_annotations(annotations, version=old_table.version)


class TestWireFormat:
    def test_serialize_roundtrip(self, media_table):
        code = media_table.code(r("VideoResource"))
        restored = ConceptCode.deserialize(code.uri, code.serialize())
        assert restored == code

    def test_roundtrip_preserves_behaviour(self, media_table):
        over = media_table.code(r("DigitalResource"))
        under = media_table.code(r("VideoResource"))
        over2 = ConceptCode.deserialize(over.uri, over.serialize())
        under2 = ConceptCode.deserialize(under.uri, under.serialize())
        assert over2.subsumes(under2)
        assert over2.distance_to(under2) == 1

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ConceptCode.deserialize("http://x.org#C", "garbage")
        with pytest.raises(ValueError):
            ConceptCode.deserialize("http://x.org#C", "0.1,0.2;notanint;0.1,0.2")


class TestAnnotation:
    def test_annotate_covers_all_concepts(self, media_table):
        cap = Capability.build(
            "urn:x:cap",
            "GetVideoStream",
            inputs=[r("VideoResource")],
            outputs=[r("VideoStream")],
            category=s("VideoServer"),
        )
        annotations = media_table.annotate([cap])
        assert set(annotations) == cap.concepts()

    def test_resolve_annotations_roundtrip(self, media_table):
        cap = Capability.build("urn:x:cap", "C", outputs=[r("Stream")])
        annotations = media_table.annotate([cap])
        resolved = media_table.resolve_annotations(annotations, media_table.version)
        assert resolved[r("Stream")] == media_table.code(r("Stream"))

    def test_annotate_unknown_concept_raises(self, media_table):
        cap = Capability.build("urn:x:cap", "C", outputs=["http://x.org/none#C"])
        with pytest.raises(UnknownConceptError):
            media_table.annotate([cap])


class TestExactEncoderTable:
    def test_exact_encoder_same_semantics(self, media_registry):
        table = CodeTable(media_registry, encoder=IntervalEncoder(exact=True))
        assert table.subsumes(r("DigitalResource"), r("VideoResource"))
        assert table.distance(r("DigitalResource"), r("VideoResource")) == 1


class TestTableSnapshot:
    """§3.2 distribution: a table round-trips through XML and keeps all
    numeric behaviour without any reasoner on the receiving side."""

    def test_roundtrip_preserves_codes(self, media_table):
        restored = CodeTable.from_xml(media_table.to_xml())
        assert restored.version == media_table.version
        assert len(restored) == len(media_table)
        for concept in (r("Stream"), r("VideoResource"), s("DigitalServer")):
            assert restored.code(concept) == media_table.code(concept)

    def test_restored_table_answers_queries(self, media_table):
        restored = CodeTable.from_xml(media_table.to_xml())
        assert restored.subsumes(r("DigitalResource"), r("VideoResource"))
        assert restored.distance(r("DigitalResource"), r("VideoResource")) == 1
        assert restored.taxonomy is None  # no reasoner shipped

    def test_restored_table_serves_a_directory(self, media_table):
        from repro.core.directory import SemanticDirectory
        from repro.services.profile import ServiceProfile

        restored = CodeTable.from_xml(media_table.to_xml())
        directory = SemanticDirectory(restored)
        cap = Capability.build(
            "urn:x:cap:snap",
            "Snap",
            inputs=[r("DigitalResource")],
            outputs=[r("Stream")],
            category=s("DigitalServer"),
        )
        directory.publish(ServiceProfile(uri="urn:x:svc:snap", name="S", provided=(cap,)))
        from repro.services.profile import ServiceRequest

        request = ServiceRequest(
            uri="urn:x:req:snap",
            capabilities=(
                Capability.build(
                    "urn:x:cap:want",
                    "Want",
                    inputs=[r("VideoResource")],
                    outputs=[r("Stream")],
                    category=s("VideoServer")),
            ),
        )
        matches = directory.query(request)
        assert matches and matches[0].service_uri == "urn:x:svc:snap"

    def test_malformed_documents_rejected(self):
        with pytest.raises(ValueError):
            CodeTable.from_xml("<nope")
        with pytest.raises(ValueError):
            CodeTable.from_xml("<Wrong/>")
        with pytest.raises(ValueError):
            CodeTable.from_xml("<CodeTable version='1'><Bogus/></CodeTable>")
        with pytest.raises(ValueError):
            CodeTable.from_xml("<CodeTable version='1'><Code uri='urn:x'/></CodeTable>")

"""Tests for capability DAG classification (§3.3): insertion, ordering
invariants, query modes, removal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability_graph import CapabilityDag, QueryMode
from repro.core.matching import TaxonomyMatcher
from repro.services.profile import Capability

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


def cap(name, inputs=(), outputs=(), category=None) -> Capability:
    return Capability.build(
        f"urn:x:cap:{name}", name, inputs=inputs, outputs=outputs, category=category
    )


@pytest.fixture()
def matcher(media_taxonomy):
    return TaxonomyMatcher(media_taxonomy)


@pytest.fixture()
def fig1_dag(matcher):
    """SendDigitalStream (generic) over ProvideGame (specific)."""
    dag = CapabilityDag()
    dag.insert(
        cap("SendDigitalStream", [r("DigitalResource")], [r("Stream")], s("DigitalServer")),
        "urn:x:svc:workstation",
        matcher,
    )
    dag.insert(
        cap("ProvideGame", [r("GameResource")], [r("Stream")], s("GameServer")),
        "urn:x:svc:workstation",
        matcher,
    )
    return dag


class TestInsertion:
    def test_generic_becomes_root(self, fig1_dag):
        roots = fig1_dag.roots()
        assert len(roots) == 1
        assert roots[0].representative.name == "SendDigitalStream"

    def test_specific_becomes_leaf(self, fig1_dag):
        leaves = fig1_dag.leaves()
        assert len(leaves) == 1
        assert leaves[0].representative.name == "ProvideGame"

    def test_edge_direction_generic_to_specific(self, fig1_dag):
        root = fig1_dag.roots()[0]
        leaf = fig1_dag.leaves()[0]
        assert leaf.node_id in root.children
        assert root.node_id in leaf.parents

    def test_insertion_order_irrelevant(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("ProvideGame", [r("GameResource")], [r("Stream")], s("GameServer")), "w", matcher)
        dag.insert(
            cap("SendDigitalStream", [r("DigitalResource")], [r("Stream")], s("DigitalServer")),
            "w",
            matcher,
        )
        assert dag.roots()[0].representative.name == "SendDigitalStream"
        assert dag.leaves()[0].representative.name == "ProvideGame"

    def test_equivalent_capabilities_merge(self, matcher):
        dag = CapabilityDag()
        n1 = dag.insert(cap("A", outputs=[r("Stream")]), "svc1", matcher)
        n2 = dag.insert(cap("B", outputs=[r("Stream")]), "svc2", matcher)
        assert n1 == n2
        assert len(dag) == 1
        assert dag.size == 2

    def test_unrelated_capabilities_are_separate_roots(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("A", outputs=[r("Stream")]), "s1", matcher)
        dag.insert(cap("B", outputs=[r("Title")]), "s2", matcher)
        assert len(dag.roots()) == 2

    def test_middle_insertion_rewires_reduction(self, matcher):
        """Insert generic, then specific, then the middle one: the direct
        generic→specific edge must be replaced by the two-step chain."""
        dag = CapabilityDag()
        top = dag.insert(cap("Top", outputs=[r("Resource")]), "s", matcher)
        bottom = dag.insert(cap("Bottom", outputs=[r("VideoResource")]), "s", matcher)
        middle = dag.insert(cap("Middle", outputs=[r("DigitalResource")]), "s", matcher)
        nodes = {n.node_id: n for n in dag.nodes()}
        assert nodes[top].children == {middle}
        assert nodes[middle].children == {bottom}
        assert nodes[bottom].parents == {middle}

    def test_ontology_index(self, fig1_dag):
        ontologies = fig1_dag.ontologies()
        assert f"{NS}/resources" in ontologies
        assert f"{NS}/servers" in ontologies


class TestQuery:
    @pytest.fixture()
    def request_video(self):
        return cap("GetVideoStream", [r("VideoResource")], [r("VideoStream")], s("VideoServer"))

    def test_greedy_finds_fig1_match(self, fig1_dag, matcher, request_video):
        hits = fig1_dag.query(request_video, matcher, QueryMode.GREEDY)
        assert hits
        assert hits[0].capability.name == "SendDigitalStream"
        assert hits[0].distance == 3

    def test_exhaustive_agrees_with_greedy_here(self, fig1_dag, matcher, request_video):
        greedy = fig1_dag.query(request_video, matcher, QueryMode.GREEDY)
        exhaustive = fig1_dag.query(request_video, matcher, QueryMode.EXHAUSTIVE)
        assert greedy[0].distance == exhaustive[0].distance

    def test_no_match_returns_empty(self, fig1_dag, matcher):
        hits = fig1_dag.query(cap("X", outputs=[r("Title")]), matcher)
        assert hits == []

    def test_greedy_descends_to_more_specific(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("Generic", outputs=[r("Resource")], category=s("Server")), "s1", matcher)
        dag.insert(
            cap("Specific", outputs=[r("VideoResource")], category=s("VideoServer")),
            "s2",
            matcher,
        )
        request = cap("Want", outputs=[r("VideoResource")], category=s("VideoServer"))
        hits = dag.query(request, matcher, QueryMode.GREEDY)
        assert hits[0].capability.name == "Specific"
        assert hits[0].distance == 0

    def test_results_sorted_by_distance(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("Far", outputs=[r("Resource")]), "s1", matcher)
        dag.insert(cap("Near", outputs=[r("DigitalResource")]), "s2", matcher)
        request = cap("Want", outputs=[r("VideoResource")])
        hits = dag.query(request, matcher, QueryMode.EXHAUSTIVE)
        assert [h.capability.name for h in hits] == ["Near", "Far"]
        assert [h.distance for h in hits] == [1, 2]

    def test_query_uses_few_matches(self, matcher):
        """The §3.3 point: greedy querying touches roots + one path, not
        every stored capability."""
        dag = CapabilityDag()
        chain = ["Resource", "DigitalResource", "VideoResource"]
        for i, concept in enumerate(chain):
            dag.insert(cap(f"C{i}", outputs=[r(concept)]), f"s{i}", matcher)
        # Several unrelated roots to pad the graph.
        dag.insert(cap("U1", outputs=[r("Title")]), "u1", matcher)
        before = matcher.stats.capability_matches
        dag.query(cap("Want", outputs=[r("VideoStream")]), matcher, QueryMode.GREEDY)
        used = matcher.stats.capability_matches - before
        assert used <= len(dag.nodes()) + 1


class TestRemoval:
    def test_remove_service_drops_entries(self, fig1_dag):
        removed = fig1_dag.remove_service("urn:x:svc:workstation")
        assert removed == 2
        assert len(fig1_dag) == 0

    def test_remove_one_of_merged_entries_keeps_node(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("A", outputs=[r("Stream")]), "svc1", matcher)
        dag.insert(cap("B", outputs=[r("Stream")]), "svc2", matcher)
        assert dag.remove_service("svc1") == 1
        assert len(dag) == 1
        assert dag.size == 1

    def test_remove_middle_relinks(self, matcher):
        dag = CapabilityDag()
        dag.insert(cap("Top", outputs=[r("Resource")]), "keep", matcher)
        dag.insert(cap("Middle", outputs=[r("DigitalResource")]), "gone", matcher)
        dag.insert(cap("Bottom", outputs=[r("VideoResource")]), "keep", matcher)
        dag.remove_service("gone")
        nodes = {n.representative.name: n for n in dag.nodes()}
        assert nodes["Top"].children == {nodes["Bottom"].node_id}
        assert nodes["Bottom"].parents == {nodes["Top"].node_id}

    def test_remove_unknown_service_noop(self, fig1_dag):
        assert fig1_dag.remove_service("urn:x:svc:nobody") == 0


class TestDagInvariants:
    """Property tests: the graph stays a transitively-reduced partial order
    consistent with the Match relation, whatever the insertion order."""

    @given(st.permutations(range(6)), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_invariants_random_populations(self, small_workload, order, base):
        matcher = TaxonomyMatcher(small_workload.taxonomy)
        dag = CapabilityDag()
        profiles = [small_workload.make_service(base + i) for i in range(6)]
        for index in order:
            dag.insert(profiles[index].provided[0], profiles[index].uri, matcher)

        nodes = {n.node_id: n for n in dag.nodes()}
        assert dag.size == 6
        # 1. Edges agree with Match (parent substitutes child).
        for node in nodes.values():
            for child_id in node.children:
                child = nodes[child_id]
                assert matcher.match(node.representative, child.representative)
                assert child_id != node.node_id
        # 2. Acyclic.
        seen_stack = []

        def visit(node_id, trail):
            assert node_id not in trail, "cycle"
            for child_id in nodes[node_id].children:
                visit(child_id, trail | {node_id})

        for node in dag.roots():
            visit(node.node_id, set())
        # 3. Roots have no parents; leaves no children; symmetry of links.
        for node in nodes.values():
            for child_id in node.children:
                assert node.node_id in nodes[child_id].parents
            for parent_id in node.parents:
                assert node.node_id in nodes[parent_id].children
        # 4. Completeness: every subsuming pair is connected by a path.
        def reachable(from_id):
            out, stack = set(), [from_id]
            while stack:
                current = stack.pop()
                for child_id in nodes[current].children:
                    if child_id not in out:
                        out.add(child_id)
                        stack.append(child_id)
            return out

        for a in nodes.values():
            reach = reachable(a.node_id)
            for b in nodes.values():
                if a.node_id == b.node_id:
                    continue
                if matcher.match(a.representative, b.representative) and not matcher.match(
                    b.representative, a.representative
                ):
                    assert b.node_id in reach, "missing order path"

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_greedy_never_worse_than_exhaustive_roots(self, small_workload, base):
        """Greedy explores from matching roots; any hit it returns must be
        a genuine match with correct distance."""
        matcher = TaxonomyMatcher(small_workload.taxonomy)
        dag = CapabilityDag()
        profiles = [small_workload.make_service(base + i) for i in range(8)]
        for profile in profiles:
            dag.insert(profile.provided[0], profile.uri, matcher)
        request = small_workload.matching_request(profiles[0]).capabilities[0]
        for hit in dag.query(request, matcher, QueryMode.GREEDY):
            assert matcher.semantic_distance(hit.capability, request) == hit.distance


class TestMutualMatchMerging:
    """Documented deviation: the paper merges vertices only at mutual
    distance 0; mutual matches at non-zero distance would create a 2-cycle,
    so we merge them too (entries stay separate)."""

    def test_mutual_match_nonzero_distance_exists_and_merges(self, matcher):
        a = cap("A", outputs=[r("DigitalResource")])
        b = cap("B", outputs=[r("DigitalResource"), r("VideoResource")])
        # Mutual match with asymmetric distances:
        assert matcher.match(a, b) and matcher.match(b, a)
        assert matcher.semantic_distance(a, b) == 1
        assert matcher.semantic_distance(b, a) == 0
        dag = CapabilityDag()
        dag.insert(a, "svc-a", matcher)
        dag.insert(b, "svc-b", matcher)
        assert len(dag) == 1  # merged: no 2-cycle
        assert dag.size == 2
        # Both entries are returned on a query hitting the vertex.
        hits = dag.query(cap("W", outputs=[r("DigitalResource")]), matcher)
        assert {h.service_uri for h in hits} == {"svc-a", "svc-b"}


class TestTextRendering:
    def test_hierarchy_rendered(self, fig1_dag):
        text = fig1_dag.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("- SendDigitalStream")
        assert lines[1].startswith("  - ProvideGame")
        assert "urn:x:svc:workstation" in text

    def test_empty_graph(self):
        assert CapabilityDag().to_text() == "(empty graph)"

    def test_shared_child_marked_once(self, matcher):
        """A diamond: the shared bottom vertex prints with a revisit mark."""
        dag = CapabilityDag()
        dag.insert(cap("TopA", outputs=[r("Resource")], category=s("Server")), "a", matcher)
        dag.insert(cap("TopB", outputs=[r("Resource")], category=s("DigitalServer")), "b", matcher)
        dag.insert(
            cap("Bottom", outputs=[r("VideoResource")], category=s("VideoServer")),
            "c",
            matcher,
        )
        text = dag.to_text()
        assert text.count("Bottom") >= 1  # rendered under at least one root

"""Packed batch matching engine: bitwise-identical to the scalar matcher.

The headline property of ``repro.core.packed``: for any directory content
and any request — including adversarial ones hypothesis composes from the
workload's concept pool — ``BatchMatchEngine.match_capability`` returns
exactly the ``(entry, SemanticDistance)`` pairs the per-entry scalar
``Matcher`` computes, on both the numpy and the stdlib backend.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directory import FlatDirectory
from repro.core.matching import CodeMatcher
from repro.core.packed import (
    BatchMatchEngine,
    PackedCodeTable,
    default_backend,
    have_numpy,
    resolve_backend,
)
from repro.services.profile import Capability

BACKENDS = ["stdlib"] + (["numpy"] if have_numpy() else [])


def scalar_pairs(entries, matcher, requested):
    """The oracle: scalar SemanticDistance per entry, skipping non-matches."""
    distances = matcher.semantic_distance_many(
        [cap for cap in entries.values()], requested
    )
    return {
        entry_id: dist
        for entry_id, dist in zip(entries.keys(), distances)
        if dist is not None
    }


class TestBackendSelection:
    def test_auto_resolves(self):
        # An explicit "auto" detects numpy regardless of the
        # REPRO_PACKED_BACKEND override, which only steers the default.
        assert resolve_backend(None) in ("numpy", "stdlib")
        assert default_backend() == resolve_backend(None)
        expected = "numpy" if have_numpy() else "stdlib"
        assert resolve_backend("auto") == expected

    def test_stdlib_always_available(self):
        assert resolve_backend("stdlib") == "stdlib"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    @pytest.mark.skipif(have_numpy(), reason="needs a numpy-less install")
    def test_numpy_without_numpy_rejected(self):  # pragma: no cover
        with pytest.raises(ValueError):
            resolve_backend("numpy")


class TestPackedCodeTable:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_subsumer_distances_match_scalar(self, small_workload, small_table, backend):
        concepts = sorted(
            {
                c
                for i in range(10)
                for cap in small_workload.make_service(i).provided
                for c in cap.concepts()
            }
        )
        matcher = CodeMatcher(table=small_table)
        packed = PackedCodeTable(concepts, matcher.lookup, backend)
        probe_concepts = [
            c
            for i in range(10, 20)
            for cap in small_workload.make_service(i).provided
            for c in cap.concepts()
        ]
        for probe in probe_concepts:
            code = matcher.lookup(probe)
            if code is None:
                continue
            got = packed.subsumer_distances(code)
            expected = {}
            for concept in concepts:
                index = packed.index.get(concept)
                if index is None:
                    continue
                d = matcher.concept_distance(concept, probe)
                if d is not None:
                    expected[index] = d
            assert got == expected

    def test_unknown_concepts_skipped(self, small_table):
        matcher = CodeMatcher(table=small_table)
        packed = PackedCodeTable(
            ["http://nowhere.example#X"], matcher.lookup, "stdlib"
        )
        assert len(packed.index) == 0


class TestEngineEqualsScalar:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workload_requests(self, small_workload, small_table, backend):
        matcher = CodeMatcher(table=small_table)
        entries = {}
        for i in range(60):
            for cap in small_workload.make_service(i).provided:
                entries[len(entries) + 1] = cap
        engine = BatchMatchEngine(entries, matcher.lookup, backend=backend)
        for probe in range(25):
            request = small_workload.matching_request(small_workload.make_service(probe))
            for requested in request.capabilities:
                pairs, stats = engine.match_capability(requested, matcher.lookup)
                assert dict(pairs) == scalar_pairs(entries, matcher, requested)
                assert stats.batch_size == len(entries)
                assert stats.pruned + stats.evaluated == stats.batch_size
                # Pruning is sound: every match survived the prune.
                assert len(pairs) <= stats.evaluated

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unrelated_requests(self, small_workload, small_table, backend):
        matcher = CodeMatcher(table=small_table)
        entries = {
            i + 1: small_workload.make_service(i).provided[0] for i in range(30)
        }
        engine = BatchMatchEngine(entries, matcher.lookup, backend=backend)
        for probe in range(10):
            request = small_workload.unrelated_request(probe)
            for requested in request.capabilities:
                pairs, _stats = engine.match_capability(requested, matcher.lookup)
                assert dict(pairs) == scalar_pairs(entries, matcher, requested)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_requested_output_matches_nothing(
        self, small_workload, small_table, backend
    ):
        matcher = CodeMatcher(table=small_table)
        entries = {1: small_workload.make_service(0).provided[0]}
        engine = BatchMatchEngine(entries, matcher.lookup, backend=backend)
        alien = Capability.build(
            uri="urn:x:alien", name="alien", outputs=["http://nowhere.example#Out"]
        )
        pairs, stats = engine.match_capability(alien, matcher.lookup)
        assert pairs == []
        assert stats.pruned == stats.batch_size
        assert dict(pairs) == scalar_pairs(entries, matcher, alien)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_engine(self, small_table, backend):
        matcher = CodeMatcher(table=small_table)
        engine = BatchMatchEngine({}, matcher.lookup, backend=backend)
        requested = Capability.build(uri="urn:x:r", name="r", outputs=["urn:x#o"])
        pairs, stats = engine.match_capability(requested, matcher.lookup)
        assert pairs == [] and stats.batch_size == 0


class TestEngineProperty:
    """Hypothesis: random IOPE sets drawn from the real concept pool."""

    @staticmethod
    def _concept_pool(workload):
        return sorted(
            {c for onto in workload.ontologies for c in onto.concepts}
        )

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_capabilities_match_scalar(
        self, small_workload, small_table, backend, data
    ):
        pool = self._concept_pool(small_workload)
        alien = "http://nowhere.example#Alien"
        concept = st.sampled_from(pool + [alien])
        concept_set = st.lists(concept, min_size=0, max_size=4)

        def build(i: int) -> Capability:
            return Capability.build(
                uri=f"urn:x:h:{i}",
                name=f"h{i}",
                inputs=data.draw(concept_set, label=f"inputs{i}"),
                outputs=data.draw(concept_set, label=f"outputs{i}"),
                properties=data.draw(concept_set, label=f"properties{i}"),
            )

        n_entries = data.draw(st.integers(min_value=0, max_value=8), label="n")
        entries = {i + 1: build(i) for i in range(n_entries)}
        requested = build(999)
        matcher = CodeMatcher(table=small_table)
        engine = BatchMatchEngine(entries, matcher.lookup, backend=backend)
        pairs, stats = engine.match_capability(requested, matcher.lookup)
        assert dict(pairs) == scalar_pairs(entries, matcher, requested)
        assert stats.batch_size == len(entries)


class TestDirectoryIntegration:
    def test_batch_follows_interval_index_default(self, small_table):
        assert FlatDirectory(small_table).use_batch_engine is True
        assert FlatDirectory(small_table, use_interval_index=False).use_batch_engine is False
        assert FlatDirectory(
            small_table, use_interval_index=False, use_batch_engine=True
        ).use_batch_engine is True

    def test_batch_query_equals_linear(self, small_workload, small_table):
        batched = FlatDirectory(small_table, use_interval_index=False, use_batch_engine=True)
        linear = FlatDirectory(small_table, use_interval_index=False)
        profiles = [small_workload.make_service(i) for i in range(25)]
        batched.publish_batch(profiles)
        linear.publish_batch(profiles)

        def canon(matches):
            return [
                (m.requested.uri, m.capability.uri, m.service_uri, m.distance)
                for m in matches
            ]

        for probe in range(8):
            request = small_workload.matching_request(profiles[probe])
            assert canon(batched.query(request)) == canon(linear.query(request))

    def test_engine_cache_tracks_epoch(self, small_workload, small_table):
        directory = FlatDirectory(
            small_table, use_interval_index=False, use_batch_engine=True
        )
        profiles = [small_workload.make_service(i) for i in range(6)]
        directory.publish_batch(profiles)
        request = small_workload.matching_request(profiles[0])
        assert directory.query(request)
        first = directory._engine
        assert directory._batch_engine() is first  # cached across queries
        directory.unpublish(profiles[0].uri)
        assert directory.query(request) == []  # rebuilt: withdrawn entry gone
        assert directory._engine is not first

    def test_batch_metrics_emitted(self, small_workload, small_table):
        from repro.obs import Observability

        directory = FlatDirectory(
            small_table, use_interval_index=False, use_batch_engine=True
        )
        directory.obs = Observability()
        directory.publish_batch([small_workload.make_service(i) for i in range(4)])
        request = small_workload.matching_request(small_workload.make_service(0))
        directory.query(request)
        names = {
            (series["name"], tuple(sorted(dict(series["labels"]).items())))
            for series in directory.obs.metrics.snapshot()
        }
        assert any(name == "match.batch_queries" for name, _labels in names)
        assert any(name == "match.batch_size" for name, _labels in names)
        assert any(name == "match.candidates_pruned" for name, _labels in names)
        backends = {
            dict(series["labels"]).get("backend")
            for series in directory.obs.metrics.snapshot()
            if series["name"] == "match.batch_queries"
        }
        assert backends == {default_backend()}

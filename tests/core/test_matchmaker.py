"""Staged matchmaker: exhaustive-equivalence, cutoffs, early exit, obs.

The contract under test (see ``docs/MATCHMAKING.md``):

* at loose cutoffs the three-stage pipeline returns the exhaustive
  backend's ranking **bit for bit** — a hand-built 20-case relevance
  fixture checks every case;
* stage-3 output is always a prefix-ordered subset of the exhaustive
  ranking: an exact prefix when only ``top_k`` truncates, an
  order-preserving subsequence under arbitrary cutoffs (hypothesis
  property over random IOPE requests and random cutoffs);
* early exit fires when a stage's survivors fit the requested top-k,
  and each stage reports candidates/elapsed through obs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.matchmaker import (
    LOOSE_CUTOFFS,
    STAGE_PREFILTER,
    STAGE_RANK,
    STAGE_SUBSUME,
    StageCutoffs,
    StagedMatchmaker,
)
from repro.services.profile import Capability, ServiceRequest

POPULATION = 30


@pytest.fixture(scope="module")
def profiles(small_workload):
    return small_workload.make_services(POPULATION)


@pytest.fixture(scope="module")
def exhaustive(small_table, profiles):
    """The oracle backend: flat, linear, scalar — the full ranking."""
    directory = FlatDirectory(small_table, use_interval_index=False)
    directory.publish_batch(profiles)
    return directory


@pytest.fixture(scope="module")
def staged_loose(small_table, profiles):
    return StagedMatchmaker.from_profiles(small_table, profiles)


def twenty_cases(workload, profiles):
    """The 20-case relevance fixture: 16 generator matching requests, two
    exact self-requests, two unrelated (empty-answer) requests."""
    cases = [workload.matching_request(profiles[i]) for i in range(16)]
    for profile in profiles[16:18]:
        cases.append(
            ServiceRequest(uri=f"{profile.uri}/exact", capabilities=profile.provided)
        )
    cases.append(workload.unrelated_request())
    cases.append(workload.unrelated_request(index=1))
    return cases


class TestLooseEqualsExhaustive:
    def test_twenty_case_fixture_bit_for_bit(
        self, small_workload, profiles, exhaustive, staged_loose
    ):
        cases = twenty_cases(small_workload, profiles)
        assert len(cases) == 20
        answered = 0
        for request in cases:
            expected = exhaustive.query(request)
            assert staged_loose.query(request) == expected
            answered += bool(expected)
        # The fixture is not vacuous: most cases have non-empty answers.
        assert answered >= 16

    def test_default_cutoffs_are_exhaustive(self):
        assert LOOSE_CUTOFFS.is_exhaustive
        assert StagedMatchmaker.__init__.__defaults__  # cutoffs default documented
        assert not StageCutoffs(top_k=3).is_exhaustive

    def test_query_batch_matches_query(self, small_workload, profiles, staged_loose):
        requests = twenty_cases(small_workload, profiles)[:5]
        assert staged_loose.query_batch(requests) == [
            staged_loose.query(r) for r in requests
        ]


class TestCutoffValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_overlap": -1},
            {"top_k": 0},
            {"stage1_keep": 0},
            {"stage2_keep": -2},
        ],
    )
    def test_bad_cutoffs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StageCutoffs(**kwargs)

    def test_directory_staged_flag_validated(self, small_table):
        with pytest.raises(ValueError):
            FlatDirectory(small_table, staged="yes")


class TestEarlyExit:
    def test_top_k_exits_before_rank(self, small_workload, small_table, profiles):
        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=StageCutoffs(top_k=100)
        )
        request = small_workload.matching_request(profiles[0])
        rows, stages = matchmaker.query_with_stages(request)
        assert rows  # the generator guarantees a match
        by_name = {report.stage: report for report in stages}
        assert by_name[STAGE_SUBSUME].early_exit
        assert STAGE_RANK not in by_name  # stage 3 never ran

    def test_empty_prefilter_short_circuits(self, small_workload, small_table, profiles):
        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=StageCutoffs(min_overlap=10_000)
        )
        request = small_workload.matching_request(profiles[0])
        rows, stages = matchmaker.query_with_stages(request)
        assert rows == []
        assert [report.stage for report in stages] == [STAGE_PREFILTER]
        assert stages[0].early_exit and stages[0].candidates_out == 0

    def test_full_pipeline_reports_three_stages(
        self, small_workload, small_table, profiles
    ):
        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=StageCutoffs(min_overlap=1)
        )
        request = small_workload.matching_request(profiles[0])
        rows, stages = matchmaker.query_with_stages(request)
        assert [report.stage for report in stages] == [
            STAGE_PREFILTER,
            STAGE_SUBSUME,
            STAGE_RANK,
        ]
        assert stages[0].candidates_in == matchmaker.capability_count
        # Candidate counts only shrink along the pipeline.
        assert (
            stages[0].candidates_out
            >= stages[1].candidates_out
            >= stages[2].candidates_out
            == len(rows)
        )


def is_ordered_subsequence(sub, full) -> bool:
    iterator = iter(full)
    return all(row in iterator for row in sub)


class TestPrefixProperty:
    """Stage-3 output vs the exhaustive ranking, under random cutoffs."""

    @staticmethod
    def _pool(workload):
        return sorted({c for onto in workload.ontologies for c in onto.concepts})

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_staged_is_prefix_ordered_subset(
        self, small_workload, small_table, profiles, exhaustive, data
    ):
        pool = self._pool(small_workload)
        concept_set = st.lists(st.sampled_from(pool), min_size=0, max_size=4)
        requested = Capability.build(
            uri="urn:x:probe",
            name="probe",
            inputs=data.draw(concept_set, label="inputs"),
            outputs=data.draw(concept_set, label="outputs"),
            properties=data.draw(concept_set, label="properties"),
        )
        request = ServiceRequest(uri="urn:x:probe-req", capabilities=(requested,))
        full = exhaustive.query(request)

        maybe_int = st.one_of(st.none(), st.integers(min_value=1, max_value=40))
        cutoffs = StageCutoffs(
            top_k=data.draw(maybe_int, label="top_k"),
            min_overlap=data.draw(st.integers(min_value=0, max_value=3), label="min_overlap"),
            stage1_keep=data.draw(maybe_int, label="stage1_keep"),
            stage2_keep=data.draw(maybe_int, label="stage2_keep"),
        )
        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=cutoffs
        )
        rows = matchmaker.query(request)
        # Always: an order-preserving subset of the exhaustive ranking.
        assert is_ordered_subsequence(rows, full)
        # Rank-only truncation (no stage-1/2 pruning): an exact prefix.
        if cutoffs.min_overlap == 0 and cutoffs.stage1_keep is None:
            keep = [c for c in (cutoffs.stage2_keep, cutoffs.top_k) if c is not None]
            expected = full[: min(keep)] if keep else full
            assert rows == expected


class TestPublicationCoherence:
    def test_epoch_tracks_publish_unpublish(self, small_workload, small_table):
        profiles = small_workload.make_services(6)
        matchmaker = StagedMatchmaker.from_profiles(small_table, profiles[:4])
        request = small_workload.matching_request(profiles[4])
        before = matchmaker.query(request)
        matchmaker.publish(profiles[4])
        after = matchmaker.query(request)
        assert any(m.service_uri == profiles[4].uri for m in after)
        assert len(after) >= len(before)
        removed = matchmaker.unpublish(profiles[4].uri)
        assert removed == len(profiles[4].provided)
        assert matchmaker.query(request) == before
        # Token postings shrink back too: no orphan entries keep tokens alive.
        assert matchmaker.unpublish(profiles[4].uri) == 0

    def test_republish_replaces(self, small_workload, small_table):
        profiles = small_workload.make_services(3)
        matchmaker = StagedMatchmaker.from_profiles(small_table, profiles)
        count_before = matchmaker.capability_count
        matchmaker.publish(profiles[0])
        assert matchmaker.capability_count == count_before
        assert len(matchmaker) == 3


class TestObsInstrumentation:
    def test_stage_metrics_emitted(self, small_workload, small_table, profiles):
        from repro.obs import Observability

        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=StageCutoffs(top_k=2, min_overlap=1)
        )
        matchmaker.obs = Observability()
        matchmaker.query(small_workload.matching_request(profiles[0]))
        series = {
            (s["name"], dict(s["labels"]).get("stage"))
            for s in matchmaker.obs.metrics.snapshot()
        }
        assert ("match.stage.candidates", STAGE_PREFILTER) in series
        assert ("match.stage.candidates", STAGE_SUBSUME) in series
        assert ("match.stage.elapsed", STAGE_PREFILTER) in series
        assert ("match.stage.early_exit", STAGE_SUBSUME) in series

    def test_null_obs_by_default(self, small_table):
        from repro.obs import NULL_OBS

        assert StagedMatchmaker(small_table).obs is NULL_OBS


class TestDirectoryStagedMode:
    def test_flat_staged_equals_plain(self, small_workload, small_table, profiles):
        plain = FlatDirectory(small_table)
        staged = FlatDirectory(small_table, staged=True)
        plain.publish_batch(profiles)
        staged.publish_batch(profiles)
        for i in range(0, POPULATION, 5):
            request = small_workload.matching_request(profiles[i])
            assert staged.query(request) == plain.query(request)
        assert "staged matchmaker" in staged.describe_info()["index"]

    def test_semantic_staged_equals_exhaustive(
        self, small_workload, small_table, profiles, exhaustive
    ):
        staged = SemanticDirectory(small_table, staged=True)
        staged.publish_batch(profiles)
        request = small_workload.matching_request(profiles[1])
        assert staged.query(request) == exhaustive.query(request)
        assert staged.query_batch([request]) == [exhaustive.query(request)]

    def test_staged_cutoffs_truncate_directory_answers(
        self, small_workload, small_table, profiles, exhaustive
    ):
        staged = FlatDirectory(small_table, staged=StageCutoffs(top_k=1))
        staged.publish_batch(profiles)
        request = small_workload.matching_request(profiles[2])
        full = exhaustive.query(request)
        rows = staged.query(request)
        assert len(rows) <= len(request.capabilities)
        assert is_ordered_subsequence(rows, full)

    def test_unpublish_reaches_staged_engine(
        self, small_workload, small_table, profiles
    ):
        staged = SemanticDirectory(small_table, staged=True)
        staged.publish_batch(profiles[:5])
        victim = profiles[0]
        staged.unpublish(victim.uri)
        request = ServiceRequest(uri=f"{victim.uri}/exact", capabilities=victim.provided)
        assert all(m.service_uri != victim.uri for m in staged.query(request))

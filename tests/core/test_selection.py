"""Tests for QoS- and context-aware selection over the semantic directory."""

import pytest

from repro.core.directory import SemanticDirectory
from repro.core.selection import QosAwareSelector
from repro.services.profile import Capability, ServiceProfile, ServiceRequest
from repro.services.qos import (
    ContextCondition,
    ContextSnapshot,
    QosConstraint,
    QosOffer,
    QosProfile,
    QosRequirement,
)

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


def provider(uri: str, output: str = "Stream", category: str = "DigitalServer") -> ServiceProfile:
    cap = Capability.build(
        f"{uri}:cap",
        f"Cap_{uri.rsplit(':', 1)[-1]}",
        inputs=[r("DigitalResource")],
        outputs=[r(output)],
        category=s(category),
    )
    return ServiceProfile(uri=uri, name=uri, provided=(cap,))


def video_request() -> ServiceRequest:
    cap = Capability.build(
        "urn:x:req:cap",
        "GetVideoStream",
        inputs=[r("VideoResource")],
        outputs=[r("VideoStream")],
        category=s("VideoServer"),
    )
    return ServiceRequest(uri="urn:x:req:video", capabilities=(cap,))


@pytest.fixture()
def selector(media_table):
    directory = SemanticDirectory(media_table)
    fast = provider("urn:x:svc:fast")
    slow = provider("urn:x:svc:slow")
    home_only = provider("urn:x:svc:home")
    directory.publish(fast)
    directory.publish(slow)
    directory.publish(home_only)
    selector = QosAwareSelector(directory)
    selector.register_qos(
        fast.uri,
        QosProfile.build({fast.provided[0].uri: (QosOffer.of(latency_ms=10.0), ContextCondition())}),
    )
    selector.register_qos(
        slow.uri,
        QosProfile.build({slow.provided[0].uri: (QosOffer.of(latency_ms=90.0), ContextCondition())}),
    )
    selector.register_qos(
        home_only.uri,
        QosProfile.build(
            {
                home_only.provided[0].uri: (
                    QosOffer.of(latency_ms=1.0),
                    ContextCondition.requires(location="home"),
                )
            }
        ),
    )
    return selector


class TestSelection:
    def test_without_qos_all_semantic_matches_survive(self, selector):
        ranked = selector.select(video_request(), context=ContextSnapshot.of(location="home"))
        assert len(ranked) == 3

    def test_context_filters_invalid_offers(self, selector):
        ranked = selector.select(video_request(), context=ContextSnapshot.of(location="office"))
        assert {m.service_uri for m in ranked} == {"urn:x:svc:fast", "urn:x:svc:slow"}

    def test_empty_context_filters_conditional_offers(self, selector):
        ranked = selector.select(video_request())
        assert "urn:x:svc:home" not in {m.service_uri for m in ranked}

    def test_hard_constraint_disqualifies(self, selector):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0))
        ranked = selector.select(
            video_request(), requirement, ContextSnapshot.of(location="office")
        )
        assert [m.service_uri for m in ranked] == ["urn:x:svc:fast"]

    def test_qos_breaks_semantic_ties(self, selector):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 200.0))
        ranked = selector.select(
            video_request(), requirement, ContextSnapshot.of(location="office")
        )
        # Both at the same semantic distance; lower latency first.
        assert ranked[0].service_uri == "urn:x:svc:fast"
        assert ranked[0].utility > ranked[1].utility

    def test_semantics_outrank_qos_by_default(self, media_table, selector):
        # An exact (distance 0) but slow provider must still beat a distant
        # fast one under the default ordering.
        directory = selector._directory
        exact = ServiceProfile(
            uri="urn:x:svc:exact",
            name="exact",
            provided=(
                Capability.build(
                    "urn:x:svc:exact:cap",
                    "ExactCap",
                    inputs=[r("VideoResource")],
                    outputs=[r("VideoStream")],
                    category=s("VideoServer"),
                ),
            ),
        )
        directory.publish(exact)
        selector.register_qos(
            exact.uri,
            QosProfile.build(
                {exact.provided[0].uri: (QosOffer.of(latency_ms=150.0), ContextCondition())}
            ),
        )
        requirement = QosRequirement.where(QosConstraint("latency_ms", 200.0))
        ranked = selector.select(
            video_request(), requirement, ContextSnapshot.of(location="office")
        )
        assert ranked[0].service_uri == "urn:x:svc:exact"
        assert ranked[0].distance == 0

    def test_qos_first_mode_flips_priorities(self, media_table):
        directory = SemanticDirectory(media_table)
        exact_slow = provider("urn:x:svc:exactslow", output="VideoStream", category="VideoServer")
        distant_fast = provider("urn:x:svc:fast2")
        directory.publish(exact_slow)
        directory.publish(distant_fast)
        selector = QosAwareSelector(directory, qos_first=True)
        selector.register_qos(
            exact_slow.uri,
            QosProfile.build(
                {exact_slow.provided[0].uri: (QosOffer.of(latency_ms=150.0), ContextCondition())}
            ),
        )
        selector.register_qos(
            distant_fast.uri,
            QosProfile.build(
                {distant_fast.provided[0].uri: (QosOffer.of(latency_ms=5.0), ContextCondition())}
            ),
        )
        requirement = QosRequirement.where(QosConstraint("latency_ms", 200.0))
        ranked = selector.select(video_request(), requirement, ContextSnapshot())
        assert ranked[0].service_uri == "urn:x:svc:fast2"

    def test_best_returns_none_when_everything_filtered(self, selector):
        requirement = QosRequirement.where(QosConstraint("latency_ms", 0.5))
        assert selector.best(video_request(), requirement, ContextSnapshot()) is None

    def test_unregister(self, selector):
        selector.unregister_qos("urn:x:svc:fast")
        requirement = QosRequirement.where(QosConstraint("latency_ms", 50.0))
        ranked = selector.select(
            video_request(), requirement, ContextSnapshot.of(location="home")
        )
        # fast lost its annotations: empty offer fails the hard constraint.
        assert {m.service_uri for m in ranked} == {"urn:x:svc:home"}

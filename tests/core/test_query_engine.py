"""The indexed, cached query engine: shared distance cache, batch APIs,
incremental Bloom summaries (docs/PERFORMANCE.md)."""

from __future__ import annotations

import pytest

from repro.core.codes import CodeTable, StaleCodesError
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.summaries import DirectorySummary
from repro.services.xml_codec import ServiceSyntaxError, profile_to_xml


def canon(matches):
    return sorted(
        (m.requested.uri, m.capability.uri, m.service_uri, m.distance) for m in matches
    )


class TestSharedDistanceCache:
    def test_cache_warms_across_queries(self, small_workload, small_table):
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(20))
        request = small_workload.matching_request(small_workload.make_service(3))
        directory.query(request)
        warm_hits = directory.stats.cache_hits
        directory.query(request)
        # The repeat query answers its concept comparisons from the memo.
        assert directory.stats.cache_hits > warm_hits
        assert directory.distance_cache.stats.hit_rate > 0

    def test_repeated_query_results_stable(self, small_workload, small_table):
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(20))
        request = small_workload.matching_request(small_workload.make_service(3))
        assert canon(directory.query(request)) == canon(directory.query(request))

    def test_cache_disabled_by_size_zero(self, small_workload, small_table):
        directory = SemanticDirectory(small_table, distance_cache_size=0)
        assert directory.distance_cache is None
        directory.publish(small_workload.make_service(0))
        request = small_workload.matching_request(small_workload.make_service(0))
        directory.query(request)
        directory.query(request)
        assert directory.stats.cache_hits == 0
        assert directory.stats.concept_comparisons > 0

    def test_table_swap_flushes_cache(self, small_workload, small_registry, small_table):
        """A new code-table snapshot (§3.2 re-encoding) must invalidate
        every memoized distance — the version key changes."""
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(10))
        request = small_workload.matching_request(small_workload.make_service(0))
        before = canon(directory.query(request))
        assert len(directory.distance_cache) > 0

        small_registry.register(small_workload.ontologies[0])  # bump snapshot
        new_table = CodeTable(small_registry)
        assert new_table.version != small_table.version
        directory.table = new_table
        after = directory.query(request)
        assert directory.distance_cache.stats.invalidations == 1
        assert directory.distance_cache.version == (id(new_table), new_table.version)
        # Same ontology content, so re-encoded answers are unchanged.
        assert canon(after) == before

    def test_stale_documents_still_rejected(self, small_workload, small_table):
        """The cache never weakens §3.2 versioning: documents carrying
        codes from another snapshot keep raising StaleCodesError."""
        directory = SemanticDirectory(small_table)
        profile = small_workload.make_service(0)
        doc = profile_to_xml(
            profile,
            annotations=small_table.annotate(profile.provided),
            codes_version=small_table.version + 7,
        )
        with pytest.raises(StaleCodesError):
            directory.publish_xml(doc)
        with pytest.raises(StaleCodesError):
            directory.publish_xml_batch([doc])


class TestBatchApis:
    def test_query_batch_equals_one_at_a_time(self, small_workload, small_table):
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(25))
        requests = [
            small_workload.matching_request(small_workload.make_service(i)) for i in range(6)
        ]
        batched = directory.query_batch(requests)
        assert len(batched) == len(requests)
        for request, batch_result in zip(requests, batched):
            assert canon(batch_result) == canon(directory.query(request))

    def test_publish_batch_equals_sequential(self, small_workload, small_table):
        profiles = [small_workload.make_service(i) for i in range(15)]
        batched = SemanticDirectory(small_table)
        sequential = SemanticDirectory(small_table)
        assert batched.publish_batch(profiles) == len(profiles)
        for profile in profiles:
            sequential.publish(profile)
        assert len(batched) == len(sequential)
        assert batched.capability_count == sequential.capability_count
        request = small_workload.matching_request(profiles[4])
        assert canon(batched.query(request)) == canon(sequential.query(request))

    def test_publish_xml_batch_is_atomic_on_bad_document(
        self, small_workload, small_table
    ):
        directory = SemanticDirectory(small_table)
        good = profile_to_xml(small_workload.make_service(0))
        with pytest.raises(ServiceSyntaxError):
            directory.publish_xml_batch([good, "<nope>"])
        assert len(directory) == 0  # nothing published from the failed batch

    def test_flat_directory_batch_parity(self, small_workload, small_table):
        profiles = [small_workload.make_service(i) for i in range(12)]
        flat = FlatDirectory(small_table)
        assert flat.publish_batch(profiles) == len(profiles)
        requests = [small_workload.matching_request(profiles[i]) for i in range(3)]
        batched = flat.query_batch(requests)
        for request, batch_result in zip(requests, batched):
            assert canon(batch_result) == canon(flat.query(request))


class TestIncrementalSummary:
    def test_unpublish_updates_summary_without_rebuild(
        self, small_workload, small_table, monkeypatch
    ):
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(10))

        def forbidden(self, capabilities):
            raise AssertionError("unpublish must not rebuild the summary")

        monkeypatch.setattr(DirectorySummary, "rebuild", forbidden)
        removed = directory.unpublish(small_workload.make_service(3).uri)
        assert removed >= 1

    def test_summary_bits_equal_fresh_rebuild_after_churn(
        self, small_workload, small_table
    ):
        """The §4 guarantee: incrementally maintained bits are identical
        to a from-scratch summary over the surviving content."""
        directory = SemanticDirectory(small_table)
        profiles = [small_workload.make_service(i) for i in range(12)]
        directory.publish_batch(profiles)
        for victim in profiles[::2]:
            directory.unpublish(victim.uri)

        fresh = DirectorySummary()
        for capability in directory.capabilities():
            fresh.add_capability(capability)
        assert directory.summary.bloom.to_bytes() == fresh.bloom.to_bytes()
        assert directory.summary.snapshot().to_bytes() == fresh.bloom.to_bytes()

    def test_unpublish_removed_count_and_absence(self, small_workload, small_table):
        directory = SemanticDirectory(small_table)
        profiles = [small_workload.make_service(i) for i in range(8)]
        directory.publish_batch(profiles)
        target = profiles[2]
        assert directory.unpublish(target.uri) == len(target.provided)
        assert directory.unpublish(target.uri) == 0
        request = small_workload.matching_request(target)
        assert all(m.service_uri != target.uri for m in directory.query(request))


class TestStateRoundTrip:
    def test_export_import_preserves_answers(self, small_workload, small_table):
        directory = SemanticDirectory(small_table)
        directory.publish_batch(small_workload.make_service(i) for i in range(10))
        restored = SemanticDirectory.from_state(directory.export_state())
        assert len(restored) == len(directory)
        assert restored.table.version == small_table.version
        request = small_workload.matching_request(small_workload.make_service(1))
        assert canon(restored.query(request)) == canon(directory.query(request))

"""Tests for service composition over required capabilities (§2.2)."""

import pytest

from repro.core.composition import Composer, CompositionError
from repro.core.directory import SemanticDirectory
from repro.services.profile import Capability, ServiceProfile, ServiceRequest

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


def cap(uri, name, outputs=(), inputs=(), category=None) -> Capability:
    return Capability.build(uri, name, inputs=inputs, outputs=outputs, category=category)


def request_for(*capabilities) -> ServiceRequest:
    return ServiceRequest(uri="urn:x:req:root", capabilities=tuple(capabilities))


@pytest.fixture()
def directory(media_table):
    return SemanticDirectory(media_table)


class TestSimpleResolution:
    def test_single_binding(self, directory):
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:streamer",
                name="Streamer",
                provided=(cap("urn:x:c:stream", "Stream", outputs=[r("Stream")]),),
            )
        )
        composer = Composer(directory)
        plan = composer.compose(request_for(cap("urn:x:c:want", "Want", outputs=[r("VideoStream")])))
        assert plan.resolved
        assert len(plan.bindings) == 1
        assert plan.bindings[0].provider_uri == "urn:x:svc:streamer"

    def test_unresolved_reported(self, directory):
        composer = Composer(directory)
        plan = composer.compose(request_for(cap("urn:x:c:want", "Want", outputs=[r("Title")])))
        assert not plan.resolved
        assert len(plan.unresolved) == 1

    def test_unknown_scheme(self, directory):
        with pytest.raises(ValueError):
            Composer(directory).compose(
                request_for(cap("urn:x:c:w", "W", outputs=[r("Stream")])), scheme="quantum"
            )


class TestTransitiveResolution:
    @pytest.fixture()
    def chain(self, directory):
        """Streamer requires a Catalog; Catalog requires nothing."""
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:streamer",
                name="Streamer",
                provided=(cap("urn:x:c:stream", "Stream", outputs=[r("Stream")]),),
                required=(cap("urn:x:c:needcat", "NeedCatalog", outputs=[r("Title")]),),
            )
        )
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:catalog",
                name="Catalog",
                provided=(cap("urn:x:c:titles", "Titles", outputs=[r("Title")]),),
            )
        )
        return directory

    @pytest.mark.parametrize("scheme", ["central", "p2p"])
    def test_dependencies_expanded(self, chain, scheme):
        composer = Composer(chain)
        plan = composer.compose(
            request_for(cap("urn:x:c:want", "Want", outputs=[r("Stream")])), scheme=scheme
        )
        assert plan.resolved
        assert set(plan.services()) == {"urn:x:svc:streamer", "urn:x:svc:catalog"}
        consumers = {binding.consumer_uri for binding in plan.bindings}
        assert consumers == {"urn:x:req:root", "urn:x:svc:streamer"}

    @pytest.mark.parametrize("scheme", ["central", "p2p"])
    def test_missing_dependency_surfaces(self, chain, scheme):
        chain.unpublish("urn:x:svc:catalog")
        composer = Composer(chain)
        plan = composer.compose(
            request_for(cap("urn:x:c:want", "Want", outputs=[r("Stream")])), scheme=scheme
        )
        assert not plan.resolved
        assert plan.unresolved[0][0] == "urn:x:svc:streamer"


class TestCycles:
    @pytest.mark.parametrize("scheme", ["central", "p2p"])
    def test_mutual_requirements_terminate(self, directory, scheme):
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:a",
                name="A",
                provided=(cap("urn:x:c:a", "A", outputs=[r("Stream")]),),
                required=(cap("urn:x:c:a:need", "NeedTitle", outputs=[r("Title")]),),
            )
        )
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:b",
                name="B",
                provided=(cap("urn:x:c:b", "B", outputs=[r("Title")]),),
                required=(cap("urn:x:c:b:need", "NeedStream", outputs=[r("Stream")]),),
            )
        )
        composer = Composer(directory)
        plan = composer.compose(
            request_for(cap("urn:x:c:want", "Want", outputs=[r("Stream")])), scheme=scheme
        )
        assert plan.resolved
        # A requires B, B requires A; A is bound twice (root + B's need)
        # but expanded only once.
        assert len(plan.bindings) == 3


class TestCentralOptimization:
    def test_central_beats_greedy_when_local_best_is_globally_bad(self, directory):
        """The greedy p2p scheme picks the semantically closest provider
        even when its transitive needs are unresolvable; the central
        scheme backtracks to a fully resolvable plan."""
        # Provider X: perfect match but requires something nobody offers.
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:perfect-but-needy",
                name="Needy",
                provided=(
                    cap(
                        "urn:x:c:x",
                        "X",
                        outputs=[r("VideoStream")],
                        category=s("VideoServer"),
                    ),
                ),
                required=(cap("urn:x:c:x:need", "NeedGame", outputs=[r("GameResource")]),),
            )
        )
        # Provider Y: semantically farther (Stream ⊒ VideoStream) but
        # self-contained.
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:selfcontained",
                name="SelfContained",
                provided=(
                    cap(
                        "urn:x:c:y",
                        "Y",
                        outputs=[r("Stream")],
                        category=s("DigitalServer"),
                    ),
                ),
            )
        )
        want = cap(
            "urn:x:c:want", "Want", outputs=[r("VideoStream")], category=s("VideoServer")
        )
        composer = Composer(directory)
        greedy = composer.compose(request_for(want), scheme="p2p")
        central = composer.compose(request_for(want), scheme="central")
        assert not greedy.resolved  # bound to X, stuck on its requirement
        assert central.resolved
        assert central.services() == ["urn:x:svc:selfcontained"]

    def test_central_minimizes_total_distance(self, directory):
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:exact",
                name="Exact",
                provided=(cap("urn:x:c:e", "E", outputs=[r("VideoStream")]),),
            )
        )
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:general",
                name="General",
                provided=(cap("urn:x:c:g", "G", outputs=[r("Stream")]),),
            )
        )
        composer = Composer(directory)
        plan = composer.compose(
            request_for(cap("urn:x:c:want", "Want", outputs=[r("VideoStream")]))
        )
        assert plan.total_distance == 0
        assert plan.services() == ["urn:x:svc:exact"]


class TestBounds:
    def test_expansion_bound_enforced(self, directory):
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:streamer",
                name="Streamer",
                provided=(cap("urn:x:c:stream", "Stream", outputs=[r("Stream")]),),
            )
        )
        wants = tuple(
            cap(f"urn:x:c:want{i}", f"Want{i}", outputs=[r("Stream")]) for i in range(5)
        )
        composer = Composer(directory, max_expansions=2)
        with pytest.raises(CompositionError):
            composer.compose(request_for(*wants), scheme="p2p")
        with pytest.raises(CompositionError):
            composer.compose(request_for(*wants), scheme="central")

    def test_identical_requirements_all_bound(self, directory):
        directory.publish(
            ServiceProfile(
                uri="urn:x:svc:streamer",
                name="Streamer",
                provided=(cap("urn:x:c:stream", "Stream", outputs=[r("Stream")]),),
            )
        )
        wants = tuple(
            cap(f"urn:x:c:want{i}", f"Want{i}", outputs=[r("Stream")]) for i in range(3)
        )
        plan = Composer(directory).compose(request_for(*wants))
        assert plan.resolved
        assert len(plan.bindings) == 3

    def test_homogeneous_chain_terminates(self, directory):
        """Self-satisfiable requirement loops must not run away: each
        provider's requirements are expanded once."""
        for index in range(10):
            directory.publish(
                ServiceProfile(
                    uri=f"urn:x:svc:chain{index}",
                    name=f"Chain{index}",
                    provided=(cap(f"urn:x:c:p{index}", f"P{index}", outputs=[r("Stream")]),),
                    required=(cap(f"urn:x:c:n{index}", f"N{index}", outputs=[r("Stream")]),),
                )
            )
        plan = Composer(directory, max_expansions=50).compose(
            request_for(cap("urn:x:c:want", "Want", outputs=[r("Stream")])), scheme="p2p"
        )
        assert plan.resolved


class TestPlanInvariants:
    """Property tests: whatever the population, plans are internally valid."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(min_value=0, max_value=40), st.integers(min_value=3, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_plan_validity_on_random_populations(self, small_workload, small_table, base, count):
        from repro.core.matching import CodeMatcher
        from repro.core.directory import SemanticDirectory

        directory = SemanticDirectory(small_table)
        profiles = [small_workload.make_service(base + i) for i in range(count)]
        for profile in profiles:
            directory.publish(profile)
        composer = Composer(directory)
        request = small_workload.matching_request(profiles[0])
        matcher = CodeMatcher(table=small_table)
        for scheme in ("central", "p2p"):
            plan = composer.compose(request, scheme=scheme)
            # 1. Every binding is a genuine semantic match with the right
            #    distance.
            for binding in plan.bindings:
                distance = matcher.semantic_distance(
                    binding.provided_capability, binding.required_capability
                )
                assert distance == binding.distance
            # 2. Every provider named in a binding is published.
            published = {p.uri for p in profiles}
            for binding in plan.bindings:
                assert binding.provider_uri in published
            # 3. Root request obligations are all accounted for.
            root_needs = {cap.uri for cap in request.capabilities}
            bound = {b.required_capability.uri for b in plan.bindings if b.consumer_uri == request.uri}
            unresolved = {c.uri for consumer, c in plan.unresolved if consumer == request.uri}
            assert root_needs == bound | unresolved

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_central_distance_never_worse_than_p2p(self, small_workload, small_table, base):
        from repro.core.directory import SemanticDirectory

        directory = SemanticDirectory(small_table)
        for i in range(8):
            directory.publish(small_workload.make_service(base + i))
        composer = Composer(directory)
        request = small_workload.matching_request(small_workload.make_service(base))
        central = composer.compose(request, scheme="central")
        p2p = composer.compose(request, scheme="p2p")
        if central.resolved and p2p.resolved:
            assert central.total_distance <= p2p.total_distance
        # Central never resolves less than p2p (it can backtrack).
        assert len(central.unresolved) <= len(p2p.unresolved)

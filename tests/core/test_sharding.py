"""Sharded directory tier: routing, pruning soundness, deterministic
merges, rebalance, snapshots, and packed-engine cache coherence.

The load-bearing property is *bit-identical equality*: a ``ShardRouter``
over K shards must return exactly the ranked list a single unsharded
directory returns on the same content — order included — at every K and
across resizes.  The second property is §4 soundness: a shard the Bloom
summaries prune ("not admitted") must genuinely hold no match.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability_graph import QueryMode
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.packed import default_backend
from repro.core.sharding import (
    ShardRouter,
    ShardedSemanticDirectory,
    service_shard_key,
    shard_index_for,
)
from repro.obs import Observability

BACKENDS = ["stdlib"] + (["numpy"] if default_backend() == "numpy" else [])


def _rows(matches) -> list[tuple[str, str, int]]:
    """Ranked rows *in order*: equality below is bit-identical."""
    return [(m.service_uri, m.capability.uri, m.distance) for m in matches]


def _requests(workload, count: int = 15):
    return [
        workload.matching_request(workload.make_service(index)) for index in range(count)
    ] + [workload.unrelated_request(index) for index in range(3)]


class TestRouting:
    def test_shard_index_deterministic_and_in_range(self, small_workload):
        for index in range(20):
            key = service_shard_key(small_workload.make_service(index))
            assert shard_index_for(key, 8) == shard_index_for(key, 8)
            assert 0 <= shard_index_for(key, 8) < 8

    def test_invalid_shard_counts_rejected(self, small_table):
        with pytest.raises(ValueError):
            shard_index_for(frozenset(), 0)
        with pytest.raises(ValueError):
            ShardRouter(small_table, 0)
        with pytest.raises(ValueError):
            ShardRouter(small_table, 4).resize(0)

    def test_service_placed_atomically(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        for profile in small_workload.iter_services(30):
            index = router.publish(profile)
            assert router.shard_of(profile.uri) == index
            hosted = router.shards[index].profile(profile.uri)
            assert hosted is not None
            assert len(hosted.provided) == len(profile.provided)
        assert len(router) == 30
        assert sum(len(shard) for shard in router.shards) == 30

    def test_republish_replaces_not_duplicates(self, small_workload, small_table):
        router = ShardRouter(small_table, 4)
        profile = small_workload.make_service(0)
        router.publish(profile)
        router.publish(profile)
        assert len(router) == 1
        assert router.capability_count == len(profile.provided)

    def test_unpublish_withdraws_everywhere(self, small_workload, small_table):
        router = ShardRouter(small_table, 4)
        profiles = small_workload.make_services(10)
        for profile in profiles:
            router.publish(profile)
        target = profiles[3]
        removed = router.unpublish(target.uri)
        assert removed == len(target.provided)
        assert router.shard_of(target.uri) is None
        assert router.unpublish(target.uri) == 0
        request = small_workload.matching_request(target)
        assert target.uri not in {row[0] for row in _rows(router.query(request))}


class TestPruning:
    def test_pruned_shards_hold_no_match(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(40))
        pruned_total = 0
        for request in _requests(small_workload):
            admitted = set(router.admitted_shards(request))
            for index, shard in enumerate(router.shards):
                if index not in admitted:
                    pruned_total += 1
                    assert shard.query(request) == [], (
                        f"summary pruned shard {index} but it holds a match"
                    )
        assert pruned_total > 0, "workload never exercised the pruning path"

    def test_summaries_disabled_fans_out_everywhere(self, small_workload, small_table):
        router = ShardRouter(small_table, 5, use_summaries=False)
        router.publish_batch(small_workload.iter_services(10))
        request = small_workload.matching_request(small_workload.make_service(0))
        assert router.admitted_shards(request) == [0, 1, 2, 3, 4]


class TestEquality:
    """Sharded scatter/gather ≡ one unsharded directory, order included."""

    def test_flat_shards_match_unsharded(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        flat = FlatDirectory(small_table, use_interval_index=False, use_batch_engine=True)
        for profile in small_workload.iter_services(60):
            router.publish(profile)
            flat.publish(profile)
        requests = _requests(small_workload)
        batched = router.query_batch(requests)
        for request, sharded in zip(requests, batched):
            assert _rows(sharded) == _rows(flat.query(request))
            assert _rows(router.query(request)) == _rows(sharded)

    def test_semantic_shards_match_unsharded(self, small_workload, small_table):
        # EXHAUSTIVE: GREEDY's cross-graph early exit is shard-local state,
        # so only the exhaustive mode is defined to be partition-invariant.
        sharded = ShardedSemanticDirectory(
            small_table, 4, query_mode=QueryMode.EXHAUSTIVE
        )
        single = SemanticDirectory(small_table, query_mode=QueryMode.EXHAUSTIVE)
        for profile in small_workload.iter_services(40):
            sharded.publish(profile)
            single.publish(profile)
        for request in _requests(small_workload):
            assert _rows(sharded.query(request)) == _rows(single.query(request))

    def test_equality_invariant_across_k(self, small_workload, small_table):
        requests = _requests(small_workload)
        reference = None
        for shard_count in (1, 2, 3, 8):
            router = ShardRouter(small_table, shard_count)
            router.publish_batch(small_workload.iter_services(50))
            answers = [_rows(rows) for rows in router.query_batch(requests)]
            if reference is None:
                reference = answers
            else:
                assert answers == reference, f"K={shard_count} diverged"


class TestResize:
    def test_merge_fast_path_preserves_content(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(50))
        requests = _requests(small_workload)
        expected = [_rows(rows) for rows in router.query_batch(requests)]
        for shard_count in (4, 2, 1):
            router.resize(shard_count)
            assert router.shard_count == shard_count
            assert len(router) == 50
            assert [_rows(rows) for rows in router.query_batch(requests)] == expected

    def test_split_rehashes_to_canonical_placement(self, small_workload, small_table):
        router = ShardRouter(small_table, 2)
        router.publish_batch(small_workload.iter_services(40))
        requests = _requests(small_workload)
        expected = [_rows(rows) for rows in router.query_batch(requests)]
        router.resize(8)
        for profile in router.services():
            assert router.shard_of(profile.uri) == shard_index_for(
                service_shard_key(profile), 8
            )
        assert [_rows(rows) for rows in router.query_batch(requests)] == expected

    def test_resize_reports_moved_services(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(30))
        before = dict(router._service_shard)
        moved = router.resize(4)
        after = router._service_shard
        assert moved == sum(1 for uri in after if before[uri] != after[uri])
        # Fast-path merge folds shard i onto i % 4 without rehashing.
        for uri, index in after.items():
            assert index == before[uri] % 4

    def test_pruning_still_sound_after_resize(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(40))
        router.resize(4)
        for request in _requests(small_workload, count=8):
            admitted = set(router.admitted_shards(request))
            for index, shard in enumerate(router.shards):
                if index not in admitted:
                    assert shard.query(request) == []


class TestSnapshot:
    def test_round_trip_same_k(self, small_workload, small_table):
        router = ShardRouter(small_table, 4)
        router.publish_batch(small_workload.iter_services(25))
        restored = ShardRouter.from_state(router.export_state())
        assert restored.shard_count == 4
        assert restored.capability_count == router.capability_count
        for request in _requests(small_workload, count=8):
            assert _rows(restored.query(request)) == _rows(router.query(request))

    def test_restore_into_different_k_rebalances(self, small_workload, small_table):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(25))
        restored = ShardRouter.from_state(router.export_state(), shard_count=3)
        assert restored.shard_count == 3
        assert len(restored) == len(router)
        for request in _requests(small_workload, count=8):
            assert _rows(restored.query(request)) == _rows(router.query(request))

    def test_sharded_semantic_round_trip(self, small_workload, small_table):
        tier = ShardedSemanticDirectory(small_table, 4)
        tier.publish_batch(small_workload.iter_services(15))
        restored = ShardedSemanticDirectory.from_state(tier.export_state())
        assert restored.shard_count == 4
        assert restored.capability_count == tier.capability_count

    def test_malformed_snapshot_rejected(self, small_table):
        with pytest.raises(ValueError):
            ShardRouter.from_state("<NotDirectoryState/>")
        with pytest.raises(ValueError):
            ShardRouter.from_state("not xml at all")


class TestObservability:
    def test_scatter_metrics_and_rebalance_event(self, small_workload, small_table):
        events = []

        class _Sink:
            def emit_event(self, event):
                events.append(event)

        obs = Observability(sinks=[_Sink()])
        router = ShardRouter(small_table, 4)
        router.obs = obs
        router.publish_batch(small_workload.iter_services(20))
        requests = _requests(small_workload, count=6)
        router.query_batch(requests)
        assert obs.counter("dir.shard.queries").value == len(requests)
        fanout = obs.histogram("dir.shard.fanout")
        assert fanout.count == len(requests)
        assert 0 <= fanout.max <= 4
        assert obs.counter("dir.shard.publishes", shard="0").value >= 0

        router.resize(2, cause="unit_test")
        rebalance = [event for event in events if event.kind == "shard.rebalance"]
        assert len(rebalance) == 1
        assert rebalance[0].cause == "unit_test"
        assert rebalance[0].attrs["shards_before"] == 4
        assert rebalance[0].attrs["shards_after"] == 2
        assert rebalance[0].attrs["fast_merge"] is True
        assert obs.counter("dir.shard.rebalances").value == 1

        router.export_metrics()
        sizes = router.shard_sizes()
        for index, size in enumerate(sizes):
            assert (
                obs.counter("dir.shard.capabilities", shard=str(index)).value == size
            )

    def test_describe_reports_skew(self, small_workload, small_table):
        router = ShardRouter(small_table, 4)
        router.publish_batch(small_workload.iter_services(12))
        text = router.describe()
        assert "4 shards" in text
        assert "skew" in text
        assert router.skew() >= 1.0


class TestEngineCacheCoherence:
    """Packed tables are epoch-keyed caches: a publish, unpublish storm, or
    rebalance must invalidate them — a query may never see stale rows."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unpublish_storm_never_serves_stale_rows(
        self, small_workload, small_table, backend
    ):
        directory = FlatDirectory(
            small_table,
            use_interval_index=False,
            use_batch_engine=True,
            packed_backend=backend,
        )
        profiles = small_workload.make_services(30)
        for profile in profiles:
            directory.publish(profile)
        request = small_workload.matching_request(profiles[0])
        directory.query(request)  # warm the packed table
        keep = profiles[0].uri
        for profile in profiles:
            if profile.uri != keep:
                directory.unpublish(profile.uri)
        survivors = {row[0] for row in _rows(directory.query(request))}
        assert survivors <= {keep}, f"stale packed rows served: {survivors}"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_publish_after_warm_query_is_visible(
        self, small_workload, small_table, backend
    ):
        directory = FlatDirectory(
            small_table,
            use_interval_index=False,
            use_batch_engine=True,
            packed_backend=backend,
        )
        late = small_workload.make_service(7)
        request = small_workload.matching_request(late)
        for profile in small_workload.iter_services(5):
            directory.publish(profile)
        directory.query(request)  # warm without `late` published
        directory.publish(late)
        assert late.uri in {row[0] for row in _rows(directory.query(request))}

    def test_rebalance_invalidates_every_shard_engine(
        self, small_workload, small_table
    ):
        router = ShardRouter(small_table, 8)
        router.publish_batch(small_workload.iter_services(20))
        late = small_workload.make_service(40)
        request = small_workload.matching_request(late)
        router.query(request)  # warm all admitted shard engines
        router.publish(late)
        router.resize(4)  # publish → rebalance → query: no stale tables
        assert late.uri in {row[0] for row in _rows(router.query(request))}
        router.unpublish(late.uri)
        router.resize(2)
        assert late.uri not in {row[0] for row in _rows(router.query(request))}

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 11)), max_size=14))
    def test_interleaved_churn_equals_scalar_rebuild(
        self, small_workload, small_table, backend, ops
    ):
        """Any publish/unpublish interleaving: the epoch-cached packed
        engine answers exactly like a scalar directory fed the same ops,
        with a query (cache warm) forced between every mutation."""
        cached = FlatDirectory(
            small_table,
            use_interval_index=False,
            use_batch_engine=True,
            packed_backend=backend,
        )
        scalar = FlatDirectory(
            small_table, use_interval_index=False, use_batch_engine=False
        )
        request = small_workload.matching_request(small_workload.make_service(0))
        for is_publish, index in ops:
            profile = small_workload.make_service(index)
            if is_publish:
                cached.publish(profile)
                scalar.publish(profile)
            else:
                cached.unpublish(profile.uri)
                scalar.unpublish(profile.uri)
            assert _rows(cached.query(request)) == _rows(scalar.query(request))

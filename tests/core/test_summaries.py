"""Tests for Bloom-filter directory summaries (§4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summaries import DirectorySummary
from repro.services.profile import Capability, ServiceRequest


def cap(name: str, namespaces: list[str]) -> Capability:
    return Capability.build(
        f"urn:x:cap:{name}",
        name,
        outputs=[f"{ns}#Out{name}" for ns in namespaces],
    )


def request_for(capability: Capability) -> ServiceRequest:
    return ServiceRequest(uri="urn:x:req:1", capabilities=(capability,))


class TestMightHold:
    def test_exact_ontology_set_hit(self):
        summary = DirectorySummary()
        stored = cap("A", ["http://o.org/1", "http://o.org/2"])
        summary.add_capability(stored)
        probe = cap("B", ["http://o.org/1", "http://o.org/2"])
        assert summary.might_hold(probe)

    def test_subset_ontology_request_hit(self):
        """A request using fewer ontologies than the advertisement must not
        be filtered out (no false negatives for subset footprints)."""
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1", "http://o.org/2"]))
        probe = cap("B", ["http://o.org/1"])
        assert summary.might_hold(probe)

    def test_unrelated_ontology_filtered(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        probe = cap("B", ["http://elsewhere.org/9"])
        assert not summary.might_hold(probe)

    def test_empty_summary_rejects(self):
        assert not DirectorySummary().might_hold(cap("A", ["http://o.org/1"]))

    def test_might_answer_any_capability(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        request = ServiceRequest(
            uri="urn:x:req:2",
            capabilities=(cap("Nope", ["http://x.org/7"]), cap("Yes", ["http://o.org/1"])),
        )
        assert summary.might_answer(request)


class TestNoFalseNegatives:
    @given(
        st.lists(
            st.lists(st.sampled_from([f"http://o.org/{i}" for i in range(8)]), min_size=1, max_size=3, unique=True),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_stored_footprints_always_admitted(self, footprints):
        summary = DirectorySummary()
        capabilities = [cap(f"C{i}", spaces) for i, spaces in enumerate(footprints)]
        for capability in capabilities:
            summary.add_capability(capability)
        for capability in capabilities:
            assert summary.might_hold(capability)


class TestRebuildAndSaturation:
    def test_rebuild_reflects_current_content(self):
        summary = DirectorySummary()
        a = cap("A", ["http://o.org/1"])
        b = cap("B", ["http://o.org/2"])
        summary.add_capability(a)
        summary.add_capability(b)
        summary.rebuild([b])
        assert summary.might_hold(b)
        assert not summary.might_hold(a)

    def test_saturation_flag(self):
        summary = DirectorySummary(m=32, k=2)
        for i in range(60):
            summary.add_capability(cap(f"C{i}", [f"http://o{i}.org/x"]))
        assert summary.saturated

    def test_snapshot_is_copy(self):
        summary = DirectorySummary()
        snap = summary.snapshot()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        assert snap.fill_ratio == 0.0

    def test_from_bloom_wraps_exchanged_bits(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        wrapped = DirectorySummary.from_bloom(summary.snapshot())
        assert wrapped.might_hold(cap("B", ["http://o.org/1"]))

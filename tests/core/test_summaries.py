"""Tests for Bloom-filter directory summaries (§4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packed import have_numpy
from repro.core.summaries import DirectorySummary, SummaryBank
from repro.services.profile import Capability, ServiceRequest


def cap(name: str, namespaces: list[str]) -> Capability:
    return Capability.build(
        f"urn:x:cap:{name}",
        name,
        outputs=[f"{ns}#Out{name}" for ns in namespaces],
    )


def request_for(capability: Capability) -> ServiceRequest:
    return ServiceRequest(uri="urn:x:req:1", capabilities=(capability,))


class TestMightHold:
    def test_exact_ontology_set_hit(self):
        summary = DirectorySummary()
        stored = cap("A", ["http://o.org/1", "http://o.org/2"])
        summary.add_capability(stored)
        probe = cap("B", ["http://o.org/1", "http://o.org/2"])
        assert summary.might_hold(probe)

    def test_subset_ontology_request_hit(self):
        """A request using fewer ontologies than the advertisement must not
        be filtered out (no false negatives for subset footprints)."""
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1", "http://o.org/2"]))
        probe = cap("B", ["http://o.org/1"])
        assert summary.might_hold(probe)

    def test_unrelated_ontology_filtered(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        probe = cap("B", ["http://elsewhere.org/9"])
        assert not summary.might_hold(probe)

    def test_empty_summary_rejects(self):
        assert not DirectorySummary().might_hold(cap("A", ["http://o.org/1"]))

    def test_might_answer_any_capability(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        request = ServiceRequest(
            uri="urn:x:req:2",
            capabilities=(cap("Nope", ["http://x.org/7"]), cap("Yes", ["http://o.org/1"])),
        )
        assert summary.might_answer(request)


class TestNoFalseNegatives:
    @given(
        st.lists(
            st.lists(st.sampled_from([f"http://o.org/{i}" for i in range(8)]), min_size=1, max_size=3, unique=True),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_stored_footprints_always_admitted(self, footprints):
        summary = DirectorySummary()
        capabilities = [cap(f"C{i}", spaces) for i, spaces in enumerate(footprints)]
        for capability in capabilities:
            summary.add_capability(capability)
        for capability in capabilities:
            assert summary.might_hold(capability)


class TestRebuildAndSaturation:
    def test_rebuild_reflects_current_content(self):
        summary = DirectorySummary()
        a = cap("A", ["http://o.org/1"])
        b = cap("B", ["http://o.org/2"])
        summary.add_capability(a)
        summary.add_capability(b)
        summary.rebuild([b])
        assert summary.might_hold(b)
        assert not summary.might_hold(a)

    def test_saturation_flag(self):
        summary = DirectorySummary(m=32, k=2)
        for i in range(60):
            summary.add_capability(cap(f"C{i}", [f"http://o{i}.org/x"]))
        assert summary.saturated

    def test_snapshot_is_copy(self):
        summary = DirectorySummary()
        snap = summary.snapshot()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        assert snap.fill_ratio == 0.0

    def test_from_bloom_wraps_exchanged_bits(self):
        summary = DirectorySummary()
        summary.add_capability(cap("A", ["http://o.org/1"]))
        wrapped = DirectorySummary.from_bloom(summary.snapshot())
        assert wrapped.might_hold(cap("B", ["http://o.org/1"]))


class TestSummaryBank:
    """The batch bank must reproduce per-peer DirectorySummary verdicts
    exactly — including false positives — on every backend."""

    BACKENDS = ["stdlib"] + (["numpy"] if have_numpy() else [])

    @staticmethod
    def _peer_filters(n_peers: int, seed: int):
        """Peers with mixed (m, k) groups, each holding a few capabilities."""
        rng = random.Random(seed)
        params = [(512, 4), (256, 3)]
        filters: dict[int, object] = {}
        held: dict[int, list[Capability]] = {}
        for peer_id in range(n_peers):
            m, k = params[peer_id % len(params)]
            summary = DirectorySummary(m=m, k=k)
            held[peer_id] = [
                cap(
                    f"p{peer_id}c{j}",
                    sorted(
                        rng.sample([f"http://o.org/{i}" for i in range(10)], rng.randint(1, 3))
                    ),
                )
                for j in range(rng.randint(0, 4))
            ]
            for capability in held[peer_id]:
                summary.add_capability(capability)
            filters[peer_id] = summary.snapshot()
        return filters, held

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_might_answer_equals_per_peer_scalar(self, backend):
        filters, _held = self._peer_filters(30, seed=7)
        bank = SummaryBank(filters, backend=backend)
        assert len(bank) == 30
        rng = random.Random(99)
        for probe in range(60):
            namespaces = sorted(
                rng.sample(
                    [f"http://o.org/{i}" for i in range(10)]
                    + [f"http://elsewhere.org/{i}" for i in range(4)],
                    rng.randint(1, 3),
                )
            )
            request = request_for(cap(f"probe{probe}", namespaces))
            expected = {
                peer_id: DirectorySummary.from_bloom(bloom).might_answer(request)
                for peer_id, bloom in filters.items()
            }
            assert bank.might_answer(request) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_might_hold_equals_per_peer_scalar(self, backend):
        filters, _held = self._peer_filters(12, seed=3)
        bank = SummaryBank(filters, backend=backend)
        for probe_ns in (["http://o.org/0"], ["http://o.org/1", "http://o.org/2"]):
            probe = cap("probe", probe_ns)
            expected = {
                peer_id: DirectorySummary.from_bloom(bloom).might_hold(probe)
                for peer_id, bloom in filters.items()
            }
            assert bank.might_hold(probe) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_false_negatives(self, backend):
        """Every capability a peer actually holds must be admitted."""
        filters, held = self._peer_filters(20, seed=11)
        bank = SummaryBank(filters, backend=backend)
        for peer_id, capabilities in held.items():
            for capability in capabilities:
                assert bank.might_hold(capability)[peer_id]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_ontology_capability_is_vacuously_admitted(self, backend):
        """A capability with no ontology footprint filters nobody — the
        scalar path's all() over an empty URI set is vacuously true."""
        filters, _held = self._peer_filters(6, seed=5)
        bank = SummaryBank(filters, backend=backend)
        bare = Capability.build("urn:x:cap:bare", "bare")
        assert not bare.ontologies()
        verdicts = bank.might_hold(bare)
        for peer_id, bloom in filters.items():
            assert verdicts[peer_id] == DirectorySummary.from_bloom(bloom).might_hold(bare)
            assert verdicts[peer_id] is True

    def test_backends_agree(self):
        if not have_numpy():
            pytest.skip("numpy backend unavailable")
        filters, _held = self._peer_filters(25, seed=13)
        numpy_bank = SummaryBank(filters, backend="numpy")
        stdlib_bank = SummaryBank(filters, backend="stdlib")
        rng = random.Random(17)
        for probe in range(40):
            namespaces = sorted(
                rng.sample([f"http://o.org/{i}" for i in range(10)], rng.randint(1, 3))
            )
            request = request_for(cap(f"x{probe}", namespaces))
            assert numpy_bank.might_answer(request) == stdlib_bank.might_answer(request)

    def test_empty_bank(self):
        bank = SummaryBank({})
        assert len(bank) == 0
        assert bank.might_answer(request_for(cap("A", ["http://o.org/1"]))) == {}

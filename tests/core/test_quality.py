"""Relevance labeling and precision/recall scoring (``repro.core.quality``).

The scorer is the measurement instrument of the Pareto bench, so it gets
direct unit coverage: oracle-derived labels agree with the exhaustive
backend, edge conventions (empty answer, empty label set) follow the
retrieval convention, and the exhaustive backend scores perfect
precision *and* recall on every labeled case by construction.
"""

from __future__ import annotations

import pytest

from repro.core.directory import FlatDirectory
from repro.core.matchmaker import StageCutoffs, StagedMatchmaker
from repro.core.quality import (
    QualityScore,
    mean_scores,
    relevant_services,
    returned_services,
    score_answer,
)


@pytest.fixture(scope="module")
def profiles(small_workload):
    return small_workload.make_services(20)


class TestRelevanceLabels:
    def test_labels_agree_with_exhaustive_backend(
        self, small_workload, small_table, profiles
    ):
        directory = FlatDirectory(small_table, use_interval_index=False)
        directory.publish_batch(profiles)
        for i in range(0, 20, 3):
            request = small_workload.matching_request(profiles[i])
            labels = relevant_services(profiles, request, table=small_table)
            assert returned_services(directory.query(request)) == labels
            assert profiles[i].uri in labels

    def test_unrelated_request_has_no_labels(self, small_workload, small_table, profiles):
        request = small_workload.unrelated_request()
        assert relevant_services(profiles, request, table=small_table) == frozenset()

    def test_needs_table_or_matcher(self, small_workload, profiles):
        with pytest.raises(ValueError):
            relevant_services(profiles, small_workload.matching_request(profiles[0]))


class TestScoreConventions:
    def test_perfect_answer(self):
        score = QualityScore(returned=4, relevant=4, hits=4)
        assert score.precision == 1.0 and score.recall == 1.0 and score.f1 == 1.0

    def test_empty_answer_empty_labels_is_perfect(self):
        score = QualityScore(returned=0, relevant=0, hits=0)
        assert score.precision == 1.0 and score.recall == 1.0

    def test_empty_answer_with_labels_misses(self):
        score = QualityScore(returned=0, relevant=3, hits=0)
        assert score.precision == 1.0 and score.recall == 0.0 and score.f1 == 0.0

    def test_partial_answer(self):
        score = QualityScore(returned=4, relevant=8, hits=2)
        assert score.precision == 0.5 and score.recall == 0.25

    def test_mean_is_macro(self):
        averaged = mean_scores(
            [
                QualityScore(returned=1, relevant=1, hits=1),
                QualityScore(returned=2, relevant=4, hits=1),
            ]
        )
        assert averaged == (0.75, 0.625)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_scores([])


class TestBackendScoring:
    def test_exhaustive_backend_scores_perfect(
        self, small_workload, small_table, profiles
    ):
        directory = FlatDirectory(small_table, use_interval_index=False)
        directory.publish_batch(profiles)
        for i in range(0, 20, 4):
            request = small_workload.matching_request(profiles[i])
            labels = relevant_services(profiles, request, table=small_table)
            score = score_answer(directory.query(request), labels)
            assert score.precision == 1.0 and score.recall == 1.0

    def test_strict_cutoffs_keep_precision_may_lose_recall(
        self, small_workload, small_table, profiles
    ):
        matchmaker = StagedMatchmaker.from_profiles(
            small_table, profiles, cutoffs=StageCutoffs(top_k=1)
        )
        request = small_workload.matching_request(profiles[0])
        labels = relevant_services(profiles, request, table=small_table)
        score = score_answer(matchmaker.query(request), labels)
        # Truncation never returns an irrelevant service (stage 2/3 are
        # exact), so precision stays perfect; recall can only drop.
        assert score.precision == 1.0
        assert score.recall <= 1.0

"""Tests for interval encoding: slots, unions, and the central §3.2
property — subsumption in the taxonomy ⟺ interval containment in codes."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    Interval,
    IntervalEncoder,
    PrecisionExhaustedError,
    linkinvexp,
    merge_intervals,
    slot,
    slot_width,
    union_contains,
)
from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.model import THING
from repro.ontology.reasoner import Reasoner
from repro.ontology.taxonomy import Taxonomy


class TestLinkinvexp:
    def test_paper_formula_values(self):
        # linKinvexp(x) = (1/p^⌊x/k⌋)(1 + (x mod k)/k) with p=2, k=5.
        assert linkinvexp(0) == pytest.approx(1.0)
        assert linkinvexp(1) == pytest.approx(1.2)
        assert linkinvexp(4) == pytest.approx(1.8)
        assert linkinvexp(5) == pytest.approx(0.5)
        assert linkinvexp(9) == pytest.approx(0.9)
        assert linkinvexp(10) == pytest.approx(0.25)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            linkinvexp(-1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            linkinvexp(0, p=1)
        with pytest.raises(ValueError):
            linkinvexp(0, k=0)


class TestSlots:
    def test_widths_decay_by_block(self):
        assert slot_width(0) == Fraction(1, 10)  # (1/5)·(1/2)
        assert slot_width(4) == Fraction(1, 10)
        assert slot_width(5) == Fraction(1, 20)
        assert slot_width(10) == Fraction(1, 40)

    def test_slots_tile_without_overlap(self):
        previous_end = Fraction(0)
        for index in range(50):
            offset, width = slot(index)
            assert offset == previous_end
            previous_end = offset + width

    def test_total_never_exceeds_unit(self):
        offset, width = slot(10_000)
        assert offset + width < 1

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=100)
    def test_offset_matches_cumulative_width(self, index):
        offset, _ = slot(index)
        assert offset == sum(slot_width(i) for i in range(index))

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=100)
    def test_closed_form_any_parameters(self, index, p, k):
        offset, _ = slot(index, p, k)
        assert offset == sum(slot_width(i, p, k) for i in range(index))


class TestInterval:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.5, 0.5)

    def test_contains(self):
        assert Interval(0.0, 1.0).contains(Interval(0.2, 0.4))
        assert not Interval(0.2, 0.4).contains(Interval(0.0, 1.0))

    def test_overlaps(self):
        assert Interval(0.0, 0.5).overlaps(Interval(0.4, 0.8))
        assert not Interval(0.0, 0.4).overlaps(Interval(0.4, 0.8))  # half-open

    def test_merge_adjacent(self):
        merged = merge_intervals([Interval(0.0, 0.3), Interval(0.3, 0.5), Interval(0.7, 0.8)])
        assert merged == (Interval(0.0, 0.5), Interval(0.7, 0.8))

    def test_merge_empty(self):
        assert merge_intervals([]) == ()

    def test_union_contains_binary_search(self):
        union = merge_intervals([Interval(0.0, 0.2), Interval(0.4, 0.6), Interval(0.8, 1.0)])
        assert union_contains(union, Interval(0.45, 0.55))
        assert not union_contains(union, Interval(0.15, 0.45))  # spans a gap
        assert not union_contains(union, Interval(0.25, 0.3))


def taxonomy_of(onto) -> Taxonomy:
    return Reasoner().load([onto]).classify()


class TestEncoderCorrectness:
    @pytest.mark.parametrize("exact", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_subsumption_iff_containment(self, seed, exact):
        """The §3.2 soundness/completeness property on random DAGs."""
        onto = generate_ontology(
            "http://x.org/enc",
            OntologyShape(concepts=40, properties=8, multi_parent_fraction=0.3),
            seed=seed,
        )
        taxonomy = taxonomy_of(onto)
        encoded = IntervalEncoder(exact=exact).encode(taxonomy)
        concepts = [c for c in taxonomy.concepts() if c != THING]
        for a in concepts:
            for b in concepts:
                expected = taxonomy.subsumes(a, b)
                actual = encoded[a].subsumes(encoded[b])
                assert actual == expected, (a, b, expected)

    def test_equivalent_concepts_share_code(self, media_taxonomy):
        encoded = IntervalEncoder().encode(media_taxonomy)
        for concept in media_taxonomy.concepts():
            canon = media_taxonomy.canonical(concept)
            assert encoded[concept] is encoded[canon]

    def test_depths_recorded(self, media_taxonomy):
        encoded = IntervalEncoder().encode(media_taxonomy)
        ns = "http://repro.example.org/media"
        assert encoded[f"{ns}/resources#VideoResource"].depth == 3

    def test_thing_gets_unit_interval(self, media_taxonomy):
        encoded = IntervalEncoder().encode(media_taxonomy)
        assert encoded[THING].tree_interval == Interval(0.0, 1.0)

    def test_sibling_tree_intervals_disjoint(self, media_taxonomy):
        encoded = IntervalEncoder().encode(media_taxonomy)
        ns = "http://repro.example.org/media"
        siblings = [
            encoded[f"{ns}/servers#VideoServer"].tree_interval,
            encoded[f"{ns}/servers#GameServer"].tree_interval,
            encoded[f"{ns}/servers#SoundServer"].tree_interval,
        ]
        for i, a in enumerate(siblings):
            for b in siblings[i + 1 :]:
                assert not a.overlaps(b)

    def test_deterministic(self, media_taxonomy):
        a = IntervalEncoder().encode(media_taxonomy)
        b = IntervalEncoder().encode(media_taxonomy)
        for concept in media_taxonomy.concepts():
            assert a[concept].tree_interval == b[concept].tree_interval


class TestChildInterval:
    def test_nested_in_parent(self):
        encoder = IntervalEncoder()
        parent = Interval(0.25, 0.5)
        child = encoder.child_interval(parent, 3)
        assert parent.contains(child)

    def test_float_precision_error_raised(self):
        encoder = IntervalEncoder()
        # Width shrinks 10× per nesting; 50 nestings from 1e-13 underflow
        # well past what float64 can distinguish around 0.5.
        current = Interval(0.5, 0.5 + 1e-13)
        with pytest.raises(PrecisionExhaustedError):
            for _ in range(50):
                current = encoder.child_interval(current, 0)

    def test_exact_mode_never_exhausts(self):
        encoder = IntervalEncoder(exact=True)
        current = Interval(Fraction(0), Fraction(1))
        for _ in range(600):  # beyond the paper's 462-level float limit
            current = encoder.child_interval(current, 0)
        assert current.width > 0

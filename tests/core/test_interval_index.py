"""Sorted interval index: stabbing equals the linear scan it replaces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directory import FlatDirectory
from repro.core.interval_index import CandidateIndex, IntervalIndex
from repro.core.matching import CodeMatcher


def linear_stab(intervals_by_id: dict[int, list[tuple[float, float]]], lo: float, hi: float):
    """Reference implementation: scan every interval of every item."""
    return {
        item_id
        for item_id, intervals in intervals_by_id.items()
        if any(ilo <= lo and hi <= ihi for ilo, ihi in intervals)
    }


class TestIntervalIndex:
    def test_empty_index_stabs_nothing(self):
        assert IntervalIndex().stab(0.0, 1.0) == set()

    def test_basic_containment(self):
        index = IntervalIndex()
        index.insert(1, ((0.0, 10.0),))
        index.insert(2, ((2.0, 5.0),))
        index.insert(3, ((6.0, 9.0),))
        assert index.stab(3.0, 4.0) == {1, 2}
        assert index.stab(7.0, 8.0) == {1, 3}
        assert index.stab(0.0, 10.0) == {1}
        assert index.stab(11.0, 12.0) == set()

    def test_partially_overlapping_intervals(self):
        """Merged DAG codes are not laminar — NCLists must handle partial
        overlap, where plain nesting trees lose answers."""
        index = IntervalIndex()
        index.insert(1, ((0.0, 6.0),))
        index.insert(2, ((4.0, 10.0),))  # overlaps 1 without nesting
        index.insert(3, ((5.0, 6.0),))
        assert index.stab(5.0, 6.0) == {1, 2, 3}
        assert index.stab(4.5, 5.5) == {1, 2}
        assert index.stab(9.0, 10.0) == {2}

    def test_identical_intervals_share_a_node(self):
        index = IntervalIndex()
        index.insert(1, ((1.0, 2.0),))
        index.insert(2, ((1.0, 2.0),))
        assert index.stab(1.0, 2.0) == {1, 2}

    def test_discard_removes_item(self):
        index = IntervalIndex()
        index.insert(1, ((0.0, 4.0),))
        index.insert(2, ((1.0, 3.0),))
        index.discard(1)
        assert index.stab(2.0, 2.5) == {2}
        index.discard(99)  # absent id: no-op
        assert len(index) == 1

    def test_lazy_rebuild_amortizes_mutation_bursts(self):
        index = IntervalIndex()
        for item in range(10):
            index.insert(item, ((float(item), float(item) + 2.0),))
        assert index.rebuilds == 0
        index.stab(0.5, 1.0)
        index.stab(3.5, 4.0)
        assert index.rebuilds == 1  # one rebuild serves the query storm
        index.discard(3)
        index.stab(0.5, 1.0)
        # A discard tombstones its nodes in place — no O(n log n) rebuild.
        assert index.rebuilds == 1
        assert index.inplace_updates >= 1
        assert index.stab(3.5, 4.0) == {2}  # 3 gone; 4's [4,6] starts too late

    def test_discard_storm_defers_rebuild(self):
        """Regression for the discard-triggered rebuild storm: withdrawing
        k services from an n-entry index must not cost k full rebuilds.
        Discards tombstone in place; one deferred rebuild (at most) fires
        only once enough nodes have emptied."""
        from repro.core.interval_index import STALE_NODE_REBUILD_MIN

        index = IntervalIndex()
        n = 4 * STALE_NODE_REBUILD_MIN
        for item in range(n):
            index.insert(item, ((float(item), float(item) + 1.0),))
        index.stab(0.5, 0.75)
        assert index.rebuilds == 1
        # Interleave discards with queries — the old behavior rebuilt on
        # the first stab after *every* discard.
        removed = list(range(0, n, 2))
        for item in removed:
            index.discard(item)
            index.stab(float(item) + 1.25, float(item) + 1.5)
        assert index.rebuilds <= 2  # initial build + at most one deferred
        assert index.inplace_updates >= len(removed) - 1
        survivors = {i for i in range(n) if i % 2 == 1}
        for item in sorted(survivors)[:10]:
            assert index.stab(float(item) + 0.25, float(item) + 0.5) == {item}
        for item in removed[:10]:
            assert item not in index.stab(float(item) + 0.25, float(item) + 0.5)

    def test_inplace_insert_reuses_existing_nodes(self):
        """Re-inserting an id over interval keys already in the node set
        (the publish/unpublish churn pattern) skips the rebuild too."""
        index = IntervalIndex()
        index.insert(1, ((0.0, 4.0),))
        index.insert(2, ((0.0, 4.0), (6.0, 8.0)))
        index.stab(1.0, 2.0)
        assert index.rebuilds == 1
        index.discard(1)
        index.insert(3, ((0.0, 4.0),))  # same interval key: in-place
        assert index.stab(1.0, 2.0) == {2, 3}
        assert index.rebuilds == 1
        assert index.inplace_updates >= 2

    interval = st.tuples(
        st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)
    ).map(lambda pair: (float(min(pair)), float(max(pair))))

    @settings(max_examples=200, deadline=None)
    @given(
        items=st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.lists(interval, min_size=1, max_size=4),
            max_size=25,
        ),
        query=interval,
    )
    def test_stab_equals_linear_scan(self, items, query):
        """Property: for random (non-laminar) interval sets, the NCList
        stab returns exactly the linear scan's answer."""
        index = IntervalIndex()
        for item_id, intervals in items.items():
            index.insert(item_id, tuple(intervals))
        lo, hi = query
        assert index.stab(lo, hi) == linear_stab(items, lo, hi)


class TestCandidateIndex:
    def test_no_outputs_or_properties_means_no_filtering(self, small_workload, small_table):
        capability = small_workload.make_service(0).provided[0]
        index = CandidateIndex()
        matcher = CodeMatcher(table=small_table)
        index.insert(1, capability, matcher.lookup)
        bare = capability.build(uri="urn:repro:req", name="bare", inputs=["urn:x#i"])
        assert index.candidates(bare, matcher.lookup) is None

    def test_unknown_requested_concept_yields_empty(self, small_workload, small_table):
        capability = small_workload.make_service(0).provided[0]
        index = CandidateIndex()
        matcher = CodeMatcher(table=small_table)
        index.insert(1, capability, matcher.lookup)
        alien = capability.build(
            uri="urn:repro:req", name="alien", outputs=["http://nowhere.example#Thing"]
        )
        assert index.candidates(alien, matcher.lookup) == set()

    def test_unresolvable_provider_stays_always_candidate(self, small_workload, small_table):
        """A capability whose concepts had no codes at insertion must never
        be filtered out (its concepts may resolve via later embedded codes)."""
        known = small_workload.make_service(0).provided[0]
        index = CandidateIndex()
        matcher = CodeMatcher(table=small_table)
        index.insert(1, known, matcher.lookup)
        opaque = known.build(
            uri="urn:repro:opaque", name="opaque", outputs=["http://elsewhere.example#Out"]
        )
        index.insert(2, opaque, matcher.lookup)
        requested = known.build(
            uri="urn:repro:req", name="req", outputs=sorted(known.outputs)[:1]
        )
        candidates = index.candidates(requested, matcher.lookup)
        assert candidates is not None and 2 in candidates

    def test_candidates_superset_of_matches(self, small_workload, small_table):
        """Soundness: every capability the matcher accepts is a candidate."""
        matcher = CodeMatcher(table=small_table)
        index = CandidateIndex()
        capabilities = {}
        for i in range(40):
            for cap in small_workload.make_service(i).provided:
                item_id = len(capabilities)
                capabilities[item_id] = cap
                index.insert(item_id, cap, matcher.lookup)
        for probe in range(8):
            request = small_workload.matching_request(small_workload.make_service(probe))
            for requested in request.capabilities:
                candidates = index.candidates(requested, matcher.lookup)
                accepted = {
                    item_id
                    for item_id, cap in capabilities.items()
                    if matcher.match(cap, requested)
                }
                if candidates is not None:
                    assert accepted <= candidates


class TestIndexedFlatDirectoryEquality:
    @pytest.mark.parametrize("seed", [0, 7, 21, 1234])
    def test_indexed_equals_linear_across_seeds(self, small_workload, small_table, seed):
        """The headline property: FlatDirectory with the interval index
        returns exactly the linear scan's result set."""
        from repro.services.generator import ServiceWorkload

        workload = ServiceWorkload(shape=small_workload.shape, seed=seed)
        linear = FlatDirectory(small_table, use_interval_index=False)
        indexed = FlatDirectory(small_table)
        profiles = [workload.make_service(i) for i in range(30)]
        linear.publish_batch(profiles)
        indexed.publish_batch(profiles)

        def canon(matches):
            return sorted(
                (m.requested.uri, m.capability.uri, m.service_uri, m.distance)
                for m in matches
            )

        for probe in range(10):
            request = workload.matching_request(workload.make_service(probe))
            assert canon(indexed.query(request)) == canon(linear.query(request))

    def test_equality_survives_churn(self, small_workload, small_table):
        linear = FlatDirectory(small_table, use_interval_index=False)
        indexed = FlatDirectory(small_table)
        profiles = [small_workload.make_service(i) for i in range(20)]
        for directory in (linear, indexed):
            directory.publish_batch(profiles)
            for victim in profiles[::3]:
                directory.unpublish(victim.uri)
        request = small_workload.matching_request(profiles[1])

        def canon(matches):
            return sorted(
                (m.requested.uri, m.capability.uri, m.service_uri, m.distance)
                for m in matches
            )

        assert canon(indexed.query(request)) == canon(linear.query(request))


class TestIntrospection:
    """Tombstone counts and deferred-rebuild triggers are surfaced for
    operators: ``describe()`` strings and pull-based obs gauges."""

    def test_tombstones_count_emptied_nodes(self):
        index = IntervalIndex()
        for item in range(6):
            index.insert(item, ((float(item), float(item) + 1.0),))
        index.stab(0.25, 0.5)
        assert index.tombstones == 0
        index.discard(2)
        index.discard(4)
        assert index.tombstones == 2
        assert not index.rebuild_pending
        text = index.describe()
        assert "2 tombstones" in text
        assert "rebuild pending" not in text

    def test_deferred_rebuild_trigger_visible_then_cleared(self):
        from repro.core.interval_index import STALE_NODE_REBUILD_MIN

        index = IntervalIndex()
        n = 4 * STALE_NODE_REBUILD_MIN
        for item in range(n):
            index.insert(item, ((float(item), float(item) + 1.0),))
        index.stab(0.5, 0.75)
        for item in range(0, n - 2, 1):
            index.discard(item)
            if index.rebuild_pending:
                break
        assert index.rebuild_pending
        assert "rebuild pending" in index.describe()
        index.stab(float(n) - 1.5, float(n) - 1.25)  # pays the rebuild
        assert not index.rebuild_pending
        assert index.tombstones == 0
        assert index.rebuilds == 2

    def test_candidate_index_aggregates_sub_indexes(self, small_workload, small_table):
        from repro.core.matching import CodeMatcher

        # use_batch_engine=False: the packed engine answers without ever
        # stabbing the interval index, so pin the scalar+index path.
        directory = FlatDirectory(
            small_table, use_interval_index=True, use_batch_engine=False
        )
        profiles = small_workload.make_services(12)
        for profile in profiles:
            directory.publish(profile)
        matcher = CodeMatcher(table=small_table)
        request = small_workload.matching_request(profiles[0])
        directory.query(request)
        index = directory._index
        assert index.tombstones == 0
        for profile in profiles[2:]:
            directory.unpublish(profile.uri)
        assert index.tombstones > 0
        text = index.describe()
        assert "outputs:" in text and "properties:" in text
        assert index.rebuilds >= 0

    def test_flat_directory_exports_index_gauges(self, small_workload, small_table):
        from repro.obs import Observability

        directory = FlatDirectory(
            small_table, use_interval_index=True, use_batch_engine=False
        )
        directory.obs = Observability()
        for profile in small_workload.iter_services(10):
            directory.publish(profile)
        directory.query(small_workload.matching_request(small_workload.make_service(0)))
        for index in range(1, 10):
            directory.unpublish(f"urn:repro:service:{index}")
        directory.export_metrics()
        names = {series["name"]: series for series in directory.obs.metrics.snapshot()}
        assert names["index.tombstones"]["value"] == directory._index.tombstones
        assert names["index.rebuilds"]["value"] == directory._index.rebuilds
        assert names["index.tombstones"]["value"] > 0
        assert "index/engine" not in directory.describe()  # describe stays prose
        assert "tombstones" in directory.describe()

"""Scale and stress tests: larger populations, multi-capability services,
ontology evolution end to end."""

import pytest

from repro.core.codes import CodeTable
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.ontology.generator import OntologyShape
from repro.ontology.registry import OntologyRegistry
from repro.services.generator import ServiceWorkload, WorkloadShape


@pytest.fixture(scope="module")
def multi_cap_workload():
    """Services advertising three capabilities each (the paper's Amigo-S
    explicitly supports several capabilities per service)."""
    shape = WorkloadShape(
        ontology_count=8,
        ontology_shape=OntologyShape(concepts=30, properties=6),
        ontologies_per_service=2,
        inputs_per_capability=2,
        outputs_per_capability=1,
        properties_per_capability=1,
        capabilities_per_service=3,
    )
    return ServiceWorkload(shape=shape, seed=23)


class TestMultiCapabilityServices:
    def test_all_capabilities_classified(self, multi_cap_workload):
        table = CodeTable(OntologyRegistry(multi_cap_workload.ontologies))
        directory = SemanticDirectory(table)
        for profile in multi_cap_workload.make_services(20):
            directory.publish(profile)
        assert directory.capability_count == 60

    def test_requests_resolve_any_capability_index(self, multi_cap_workload):
        table = CodeTable(OntologyRegistry(multi_cap_workload.ontologies))
        directory = SemanticDirectory(table)
        services = multi_cap_workload.make_services(20)
        for profile in services:
            directory.publish(profile)
        for cap_index in range(3):
            request = multi_cap_workload.matching_request(services[4], capability_index=cap_index)
            matches = directory.query(request)
            assert any(m.service_uri == services[4].uri for m in matches), cap_index

    def test_unpublish_removes_all_capabilities(self, multi_cap_workload):
        table = CodeTable(OntologyRegistry(multi_cap_workload.ontologies))
        directory = SemanticDirectory(table)
        services = multi_cap_workload.make_services(5)
        for profile in services:
            directory.publish(profile)
        assert directory.unpublish(services[2].uri) == 3
        assert directory.capability_count == 12


class TestLargePopulation:
    @pytest.fixture(scope="class")
    def big(self):
        workload = ServiceWorkload(WorkloadShape(), seed=5)
        table = CodeTable(OntologyRegistry(workload.ontologies))
        directory = SemanticDirectory(table)
        services = workload.make_services(300)
        for profile in services:
            directory.publish(profile)
        return workload, table, directory, services

    def test_population_cached(self, big):
        _workload, _table, directory, _services = big
        assert len(directory) == 300
        assert directory.capability_count == 300

    def test_recall_over_sample(self, big):
        workload, _table, directory, services = big
        for index in range(0, 300, 23):
            request = workload.matching_request(services[index])
            matches = directory.query(request)
            assert any(m.service_uri == services[index].uri for m in matches), index

    def test_classified_agrees_with_flat_best(self, big):
        workload, table, directory, services = big
        flat = FlatDirectory(table)
        for profile in services:
            flat.publish(profile)
        for index in (1, 77, 150, 299):
            request = workload.matching_request(services[index])
            classified_best = directory.query(request)
            flat_best = flat.query(request)
            assert bool(classified_best) == bool(flat_best)
            if classified_best:
                assert classified_best[0].distance == flat_best[0].distance

    def test_churn(self, big):
        """Publish/unpublish cycles keep the index consistent."""
        workload, _table, directory, services = big
        for index in range(50):
            directory.unpublish(services[index].uri)
        assert len(directory) == 250
        for index in range(50):
            directory.publish(services[index])
        assert len(directory) == 300
        request = workload.matching_request(services[10])
        assert any(m.service_uri == services[10].uri for m in directory.query(request))


class TestOntologyEvolutionEndToEnd:
    def test_new_ontology_requires_new_table_and_works(self):
        workload = ServiceWorkload(
            WorkloadShape(ontology_count=4, ontology_shape=OntologyShape(concepts=20, properties=4)),
            seed=3,
        )
        registry = OntologyRegistry(workload.ontologies)
        old_table = CodeTable(registry)
        directory = SemanticDirectory(old_table)
        services = workload.make_services(10)
        for profile in services:
            directory.publish(profile)

        # Evolution: a new ontology arrives; codes must be re-minted.
        from repro.ontology.generator import generate_ontology

        registry.register(generate_ontology("http://x.org/new-domain", seed=9))
        new_table = CodeTable(registry)
        assert new_table.version > old_table.version

        # A directory rebuilt on the new table still answers everything.
        refreshed = SemanticDirectory(new_table)
        for profile in services:
            refreshed.publish(profile)
        request = workload.matching_request(services[3])
        assert any(m.service_uri == services[3].uri for m in refreshed.query(request))

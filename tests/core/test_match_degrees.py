"""Tests for Paolucci-style match degrees and conversation filtering."""

import pytest

from repro.core.directory import SemanticDirectory
from repro.core.matching import MatchDegree, TaxonomyMatcher
from repro.core.selection import filter_by_conversation
from repro.services.process import Invoke, Repeat, choice, sequence
from repro.services.profile import Capability, ServiceProfile, ServiceRequest

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


@pytest.fixture()
def matcher(media_taxonomy):
    return TaxonomyMatcher(media_taxonomy)


class TestConceptDegree:
    def test_exact(self, matcher):
        assert matcher.concept_degree(r("Stream"), r("Stream")) is MatchDegree.EXACT

    def test_plugin_when_provided_more_specific(self, matcher):
        assert (
            matcher.concept_degree(r("VideoResource"), r("DigitalResource"))
            is MatchDegree.PLUGIN
        )

    def test_subsumes_when_provided_more_general(self, matcher):
        assert (
            matcher.concept_degree(r("DigitalResource"), r("VideoResource"))
            is MatchDegree.SUBSUMES
        )

    def test_fail_when_unrelated(self, matcher):
        assert matcher.concept_degree(r("Title"), r("Stream")) is MatchDegree.FAIL

    def test_ordering_best_first(self):
        assert MatchDegree.EXACT < MatchDegree.PLUGIN < MatchDegree.SUBSUMES < MatchDegree.FAIL


class TestOutputDegree:
    def _caps(self, provided_outputs, requested_outputs):
        provided = Capability.build("urn:x:p", "P", outputs=provided_outputs)
        requested = Capability.build("urn:x:q", "Q", outputs=requested_outputs)
        return provided, requested

    def test_all_exact(self, matcher):
        provided, requested = self._caps([r("Stream")], [r("Stream")])
        assert matcher.output_degree(provided, requested) is MatchDegree.EXACT

    def test_worst_over_outputs(self, matcher):
        provided, requested = self._caps(
            [r("Stream"), r("DigitalResource")], [r("Stream"), r("VideoResource")]
        )
        # Stream exact, VideoResource served by more-general DigitalResource.
        assert matcher.output_degree(provided, requested) is MatchDegree.SUBSUMES

    def test_best_partner_per_output(self, matcher):
        provided, requested = self._caps(
            [r("Stream"), r("VideoStream")], [r("VideoStream")]
        )
        assert matcher.output_degree(provided, requested) is MatchDegree.EXACT

    def test_fail_dominates(self, matcher):
        provided, requested = self._caps([r("Stream")], [r("Title")])
        assert matcher.output_degree(provided, requested) is MatchDegree.FAIL


class TestConversationFilter:
    @pytest.fixture()
    def directory(self, media_table):
        directory = SemanticDirectory(media_table)
        strict = ServiceProfile(
            uri="urn:x:svc:strict",
            name="Strict",
            provided=(
                Capability.build("urn:x:cap:strict", "Play", outputs=[r("Stream")]),
            ),
            process=sequence(Invoke("login"), Invoke("play"), Invoke("logout")),
        )
        lenient = ServiceProfile(
            uri="urn:x:svc:lenient",
            name="Lenient",
            provided=(
                Capability.build("urn:x:cap:lenient", "Play2", outputs=[r("Stream")]),
            ),
            process=sequence(Repeat(body=choice(Invoke("play"), Invoke("pause"))),),
        )
        unconstrained = ServiceProfile(
            uri="urn:x:svc:open",
            name="Open",
            provided=(
                Capability.build("urn:x:cap:open", "Play3", outputs=[r("Stream")]),
            ),
        )
        for profile in (strict, lenient, unconstrained):
            directory.publish(profile)
        return directory

    def _request(self):
        return ServiceRequest(
            uri="urn:x:req:1",
            capabilities=(Capability.build("urn:x:req:cap", "Want", outputs=[r("Stream")]),),
        )

    def test_all_match_semantically(self, directory):
        assert len(directory.query(self._request())) == 3

    def test_filter_keeps_compatible_and_unconstrained(self, directory):
        client = Invoke("play")  # just play, no login
        matches = directory.query(self._request())
        kept = filter_by_conversation(matches, client, directory)
        assert {m.service_uri for m in kept} == {"urn:x:svc:lenient", "urn:x:svc:open"}

    def test_filter_keeps_all_for_conforming_client(self, directory):
        client = sequence(Invoke("login"), Invoke("play"), Invoke("logout"))
        matches = directory.query(self._request())
        kept = filter_by_conversation(matches, client, directory)
        # Conversation matches strict exactly; lenient cannot accept login.
        assert {m.service_uri for m in kept} == {"urn:x:svc:strict", "urn:x:svc:open"}


class TestProcessXmlRoundtrip:
    def test_profile_with_process_roundtrips(self, media_table):
        from repro.services.xml_codec import profile_from_xml, profile_to_xml
        from repro.services.process import AnyOrder

        profile = ServiceProfile(
            uri="urn:x:svc:conv",
            name="Conv",
            provided=(Capability.build("urn:x:cap:c", "C", outputs=[r("Stream")]),),
            process=sequence(
                Invoke("login"),
                AnyOrder(parts=(Invoke("configure"), Invoke("warmup"))),
                Repeat(body=choice(Invoke("play"), Invoke("pause"))),
            ),
        )
        restored, _ = profile_from_xml(profile_to_xml(profile))
        assert restored == profile

    def test_malformed_process_rejected(self):
        from repro.services.xml_codec import ServiceSyntaxError, profile_from_xml

        doc = (
            "<Service uri='urn:x:s' name='s'><Process>"
            "<Repeat><Invoke operation='a'/><Invoke operation='b'/></Repeat>"
            "</Process></Service>"
        )
        with pytest.raises(ServiceSyntaxError, match="exactly one child"):
            profile_from_xml(doc)

    def test_process_survives_directory_snapshot(self, media_table):
        directory = SemanticDirectory(media_table)
        profile = ServiceProfile(
            uri="urn:x:svc:conv",
            name="Conv",
            provided=(Capability.build("urn:x:cap:c", "C", outputs=[r("Stream")]),),
            process=sequence(Invoke("a"), Invoke("b")),
        )
        directory.publish(profile)
        restored = SemanticDirectory.from_state(directory.export_state())
        assert restored.services()[0].process == profile.process

"""Tests for the semantic directory (§3.3) and the flat baseline (Fig. 9)."""

import pytest

from repro.core.codes import StaleCodesError
from repro.core.directory import FlatDirectory, SemanticDirectory
from repro.core.capability_graph import QueryMode
from repro.services.profile import Capability, ServiceProfile, ServiceRequest
from repro.services.xml_codec import ServiceSyntaxError, profile_to_xml, request_to_xml

NS = "http://repro.example.org/media"


def r(name: str) -> str:
    return f"{NS}/resources#{name}"


def s(name: str) -> str:
    return f"{NS}/servers#{name}"


def workstation() -> ServiceProfile:
    send = Capability.build(
        "urn:x:cap:SendDigitalStream",
        "SendDigitalStream",
        inputs=[r("DigitalResource")],
        outputs=[r("Stream")],
        category=s("DigitalServer"),
        includes=("urn:x:cap:ProvideGame",),
    )
    game = Capability.build(
        "urn:x:cap:ProvideGame",
        "ProvideGame",
        inputs=[r("GameResource")],
        outputs=[r("Stream")],
        category=s("GameServer"),
    )
    return ServiceProfile(uri="urn:x:svc:workstation", name="Workstation", provided=(send, game))


def video_request() -> ServiceRequest:
    capability = Capability.build(
        "urn:x:cap:GetVideoStream",
        "GetVideoStream",
        inputs=[r("VideoResource")],
        outputs=[r("VideoStream")],
        category=s("VideoServer"),
    )
    return ServiceRequest(uri="urn:x:req:video", capabilities=(capability,))


class TestPublish:
    def test_publish_and_counts(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        assert len(directory) == 1
        assert directory.capability_count == 2
        assert directory.graph_count >= 1

    def test_publish_xml_roundtrip(self, media_table):
        directory = SemanticDirectory(media_table)
        profile = workstation()
        doc = profile_to_xml(
            profile,
            annotations=media_table.annotate(profile.provided),
            codes_version=media_table.version,
        )
        restored = directory.publish_xml(doc)
        assert restored.uri == profile.uri
        assert directory.capability_count == 2

    def test_stale_codes_rejected(self, media_table):
        directory = SemanticDirectory(media_table)
        profile = workstation()
        doc = profile_to_xml(
            profile,
            annotations=media_table.annotate(profile.provided),
            codes_version=media_table.version + 5,
        )
        with pytest.raises(StaleCodesError):
            directory.publish_xml(doc)

    def test_republish_replaces(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        directory.publish(workstation())
        assert len(directory) == 1
        assert directory.capability_count == 2

    def test_malformed_document(self, media_table):
        with pytest.raises(ServiceSyntaxError):
            SemanticDirectory(media_table).publish_xml("<nope>")


class TestQuery:
    def test_fig1_scenario(self, media_table):
        """The PDA's GetVideoStream should select SendDigitalStream (which
        includes GetVideoStream's functionality) at distance 3."""
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        matches = directory.query(video_request())
        assert matches
        assert matches[0].capability.name == "SendDigitalStream"
        assert matches[0].distance == 3
        assert matches[0].service_uri == "urn:x:svc:workstation"

    def test_query_xml(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        request = video_request()
        doc = request_to_xml(
            request,
            annotations=media_table.annotate(request.capabilities),
            codes_version=media_table.version,
        )
        matches = directory.query_xml(doc)
        assert matches and matches[0].distance == 3

    def test_graph_preselection_filters_foreign_ontologies(self, media_table):
        """The paper's DAG2/O3 example: graphs sharing no ontology with the
        request are never searched."""
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        foreign = Capability.build(
            "urn:x:req:foreign", "F", outputs=["http://elsewhere.org/onto#Thing2"]
        )
        request = ServiceRequest(uri="urn:x:req:f", capabilities=(foreign,))
        assert directory.query(request) == []

    def test_empty_directory(self, media_table):
        assert SemanticDirectory(media_table).query(video_request()) == []

    def test_exhaustive_mode(self, media_table):
        directory = SemanticDirectory(media_table, query_mode=QueryMode.EXHAUSTIVE)
        directory.publish(workstation())
        matches = directory.query(video_request())
        assert matches[0].distance == 3

    def test_best_match_ranked_first(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        exact = ServiceProfile(
            uri="urn:x:svc:videoserver",
            name="VideoServer",
            provided=(
                Capability.build(
                    "urn:x:cap:GetVideoStreamImpl",
                    "GetVideoStreamImpl",
                    inputs=[r("VideoResource")],
                    outputs=[r("VideoStream")],
                    category=s("VideoServer")),
            ),
        )
        directory.publish(exact)
        matches = directory.query(video_request())
        assert matches[0].service_uri == "urn:x:svc:videoserver"
        assert matches[0].distance == 0


class TestUnpublish:
    def test_unpublish_removes(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        removed = directory.unpublish("urn:x:svc:workstation")
        assert removed == 2
        assert directory.query(video_request()) == []
        assert directory.graph_count == 0

    def test_unpublish_unknown(self, media_table):
        assert SemanticDirectory(media_table).unpublish("urn:x:svc:none") == 0

    def test_summary_rebuilt_after_unpublish(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        directory.unpublish("urn:x:svc:workstation")
        assert not directory.summary.might_answer(video_request())


class TestFlatDirectory:
    def test_same_answers_as_classified(self, media_table):
        classified = SemanticDirectory(media_table)
        flat = FlatDirectory(media_table)
        classified.publish(workstation())
        flat.publish(workstation())
        c = classified.query(video_request())
        f = flat.query(video_request())
        assert c[0].distance == f[0].distance == 3
        assert c[0].service_uri == f[0].service_uri

    def test_flat_matches_all_capabilities(self, small_workload, small_table):
        """Fig. 9's point: the flat baseline's match count scales with the
        directory size, the classified one's does not."""
        from repro.core.matching import CodeMatcher

        flat = FlatDirectory(small_table)
        classified = SemanticDirectory(small_table)
        services = small_workload.make_services(30)
        for profile in services:
            flat.publish(profile)
            classified.publish(profile)
        request = small_workload.matching_request(services[5])

        flat_hits = flat.query(request)
        classified_hits = classified.query(request)
        assert {h.service_uri for h in classified_hits} <= {
            h.service_uri for h in flat_hits
        } or classified_hits[0].distance == flat_hits[0].distance
        # Best answer is the same.
        assert classified_hits[0].distance == flat_hits[0].distance

    def test_unpublish(self, media_table):
        flat = FlatDirectory(media_table)
        flat.publish(workstation())
        assert flat.unpublish("urn:x:svc:workstation") == 2
        assert flat.capability_count == 0

    def test_publish_xml(self, media_table):
        flat = FlatDirectory(media_table)
        profile = workstation()
        flat.publish_xml(profile_to_xml(profile))
        assert len(flat) == 1


class TestWorkloadScale:
    def test_all_derived_requests_resolved(self, small_workload, small_table):
        """Every matching_request must find its advertiser (§5 recall)."""
        directory = SemanticDirectory(small_table)
        services = small_workload.make_services(40)
        for profile in services:
            directory.publish(profile)
        missing = []
        for profile in services:
            request = small_workload.matching_request(profile)
            matches = directory.query(request)
            if not any(m.service_uri == profile.uri for m in matches):
                missing.append(profile.uri)
        assert not missing, missing


class TestStateSnapshot:
    """Directory persistence: export/import with codes, no reasoner on the
    importing side (the Fig. 7 successor-directory scenario)."""

    def test_roundtrip_preserves_answers(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        restored = SemanticDirectory.from_state(directory.export_state())
        assert len(restored) == 1
        assert restored.capability_count == 2
        original = directory.query(video_request())
        recovered = restored.query(video_request())
        assert [(m.service_uri, m.distance) for m in recovered] == [
            (m.service_uri, m.distance) for m in original
        ]

    def test_restored_table_has_no_taxonomy(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        restored = SemanticDirectory.from_state(directory.export_state())
        assert restored.table.taxonomy is None
        assert restored.table.version == media_table.version

    def test_empty_directory_roundtrip(self, media_table):
        directory = SemanticDirectory(media_table)
        restored = SemanticDirectory.from_state(directory.export_state())
        assert len(restored) == 0
        assert restored.query(video_request()) == []

    def test_malformed_snapshot_rejected(self, media_table):
        with pytest.raises(ValueError):
            SemanticDirectory.from_state("<nope")
        with pytest.raises(ValueError):
            SemanticDirectory.from_state("<Wrong/>")
        with pytest.raises(ValueError):
            SemanticDirectory.from_state("<DirectoryState version='1'/>")

    def test_kwargs_forwarded(self, media_table):
        directory = SemanticDirectory(media_table)
        directory.publish(workstation())
        restored = SemanticDirectory.from_state(
            directory.export_state(), query_mode=QueryMode.EXHAUSTIVE
        )
        assert restored.query_mode is QueryMode.EXHAUSTIVE

"""Parallel multi-trial runner: worker-pool execution must be invisible.

``run_trials`` promises that for a deterministic trial function the
result list is identical — bitwise, element for element — whether the
trials ran sequentially, in a process pool, or fell back from one to the
other.  ``merge_trial_results`` promises the aggregation is equally
order-stable.
"""

import random

from repro.experiments import ExperimentResult, merge_trial_results, run_trials


def deterministic_trial(seed: int) -> dict[str, float]:
    """A seed-only trial: accumulates floats in a fixed order."""
    rng = random.Random(seed)
    total = 0.0
    for _ in range(100):
        total += rng.random() * 0.1
    return {"total": total, "first": rng.random(), "seed": float(seed)}


def experiment_trial(seed: int) -> ExperimentResult:
    result = ExperimentResult(name="toy", header=["seed", "value"])
    rng = random.Random(seed)
    result.extras["value"] = rng.random()
    result.rows.append([seed, result.extras["value"]])
    return result


class TestRunTrials:
    def test_parallel_bitwise_identical_to_sequential(self):
        seeds = list(range(8))
        sequential = [deterministic_trial(seed) for seed in seeds]
        parallel = run_trials(deterministic_trial, seeds, processes=4)
        assert parallel == sequential  # dict/float equality is exact here

    def test_result_order_follows_seed_order(self):
        seeds = [7, 3, 11, 1]
        results = run_trials(deterministic_trial, seeds, processes=4)
        assert [r["seed"] for r in results] == [7.0, 3.0, 11.0, 1.0]

    def test_single_process_path(self):
        seeds = [1, 2]
        assert run_trials(deterministic_trial, seeds, processes=1) == [
            deterministic_trial(1),
            deterministic_trial(2),
        ]

    def test_empty_seed_list(self):
        assert run_trials(deterministic_trial, []) == []

    def test_unpicklable_trial_falls_back_to_sequential(self):
        # A lambda cannot cross a process boundary; the runner must fall
        # back silently and still return correct, ordered results.
        results = run_trials(lambda seed: seed * 2, [1, 2, 3], processes=2)
        assert results == [2, 4, 6]


class TestMergeTrialResults:
    def test_merge_is_order_stable(self):
        seeds = list(range(6))
        sequential = [deterministic_trial(seed) for seed in seeds]
        parallel = run_trials(deterministic_trial, seeds, processes=3)
        assert merge_trial_results(parallel) == merge_trial_results(sequential)

    def test_merge_shape(self):
        merged = merge_trial_results([deterministic_trial(s) for s in (1, 2, 3)])
        assert set(merged) == {"total", "first", "seed"}
        stats = merged["total"]
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert len(stats["values"]) == 3
        # Mean accumulated in trial order: recompute exactly.
        expected = 0.0
        for value in stats["values"]:
            expected += value
        assert stats["mean"] == expected / 3

    def test_merge_accepts_experiment_results(self):
        merged = merge_trial_results([experiment_trial(s) for s in (4, 5)])
        assert "value" in merged
        assert len(merged["value"]["values"]) == 2

    def test_merge_empty(self):
        assert merge_trial_results([]) == {}

    def test_merge_keeps_only_shared_metrics(self):
        merged = merge_trial_results([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert set(merged) == {"a"}

"""Tests for positions, placement and mobility."""

import random

import pytest

from repro.network.topology import (
    Bounds,
    Position,
    RandomWaypoint,
    StaticPlacement,
    grid_positions,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_moved_toward_partial(self):
        moved = Position(0, 0).moved_toward(Position(10, 0), 4)
        assert moved == Position(4.0, 0.0)

    def test_moved_toward_clamps_at_target(self):
        assert Position(0, 0).moved_toward(Position(1, 0), 5) == Position(1, 0)

    def test_moved_toward_zero_distance(self):
        assert Position(2, 2).moved_toward(Position(2, 2), 1) == Position(2, 2)


class TestBounds:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Bounds(0, 10)

    def test_random_position_inside(self):
        bounds = Bounds(100, 50)
        rng = random.Random(0)
        for _ in range(100):
            p = bounds.random_position(rng)
            assert 0 <= p.x <= 100 and 0 <= p.y <= 50


class TestStaticPlacement:
    def test_step_is_identity(self):
        placement = StaticPlacement()
        p = Position(5, 5)
        assert placement.step(1, p, 10.0, Bounds(10, 10), random.Random(0)) == p


class TestRandomWaypoint:
    def test_nodes_move(self):
        bounds = Bounds(100, 100)
        rng = random.Random(1)
        model = RandomWaypoint(min_speed=1.0, max_speed=2.0, pause_time=0.0)
        p0 = model.initial_position(1, bounds, rng)
        p1 = model.step(1, p0, 5.0, bounds, rng)
        assert p1 != p0

    def test_positions_stay_in_bounds(self):
        bounds = Bounds(50, 50)
        rng = random.Random(2)
        model = RandomWaypoint(min_speed=2.0, max_speed=5.0, pause_time=1.0)
        position = model.initial_position(1, bounds, rng)
        for _ in range(200):
            position = model.step(1, position, 1.0, bounds, rng)
            assert 0 <= position.x <= 50 and 0 <= position.y <= 50

    def test_pause_holds_position(self):
        bounds = Bounds(100, 100)
        rng = random.Random(3)
        model = RandomWaypoint(min_speed=100.0, max_speed=100.0, pause_time=10.0)
        position = model.initial_position(1, bounds, rng)
        # One big step reaches the waypoint and triggers the pause.
        at_waypoint = model.step(1, position, 10.0, bounds, rng)
        held = model.step(1, at_waypoint, 5.0, bounds, rng)
        assert held == at_waypoint

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            RandomWaypoint(min_speed=5.0, max_speed=1.0)

    def test_zero_speed_clamped(self):
        model = RandomWaypoint(min_speed=0.0, max_speed=0.0)
        assert model.min_speed > 0


class TestGridPositions:
    def test_count(self):
        assert len(grid_positions(10, Bounds(100, 100))) == 10

    def test_positions_distinct(self):
        positions = grid_positions(9, Bounds(100, 100))
        assert len(set(positions)) == 9

    def test_single_node(self):
        assert len(grid_positions(1, Bounds(100, 100))) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            grid_positions(0, Bounds(10, 10))

"""Tests for the discrete-event engine."""

import pytest

from repro.network.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_on_insertion_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_clock_advances_to_until_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.001, loop)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(until=1000.0, max_events=100)


class TestDaemonEvents:
    def test_daemon_events_do_not_keep_run_alive(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(1.0, lambda: fired.append(sim.now), daemon=True)
        sim.schedule(3.5, lambda: None)
        sim.run()  # unbounded: stops once the only regular event drained
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_all_daemon_queue_never_runs_unbounded(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), daemon=True)
        sim.run()
        assert fired == []
        # A bounded run still fires daemon events inside the horizon.
        sim.run(until=2.0)
        assert fired == [1]

    def test_cancel_of_last_regular_event_ends_unbounded_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(1.0, lambda: fired.append(sim.now), daemon=True)
        keeper = sim.schedule(100.0, lambda: fired.append("keeper"))
        keeper.cancel()
        sim.run()
        assert fired == []

    def test_double_cancel_is_safe(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()  # must not double-decrement the live count
        sim.run()
        assert sim.now == 2.0

    def test_cancel_after_firing_is_a_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired; live count must stay balanced
        sim.run()
        assert sim.now == 2.0


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        fired = []
        cancel = sim.schedule_every(1.0, lambda: fired.append(sim.now))
        sim.run(until=2.5)
        cancel()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)

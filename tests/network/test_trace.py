"""Tests for protocol event tracing."""

import pytest

from repro.core.codes import CodeTable
from repro.network.election import ElectionConfig
from repro.network.trace import EventTrace, TraceEvent
from repro.ontology.registry import OntologyRegistry
from repro.protocols.deployment import Deployment, DeploymentConfig
from repro.services.xml_codec import profile_to_xml, request_to_xml

FAST_ELECTION = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


class TestEventTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        trace.record(1.0, 3, "publish", "svc-a")
        trace.record(2.0, 3, "query", "#1")
        trace.record(3.0, 4, "publish", "svc-b")
        assert len(trace) == 3
        assert [e.detail for e in trace.filter(kind="publish")] == ["svc-a", "svc-b"]
        assert [e.kind for e in trace.filter(actor=3)] == ["publish", "query"]

    def test_capacity_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for index in range(5):
            trace.record(float(index), 0, "tick", str(index))
        assert len(trace) == 3
        assert trace.dropped == 2
        assert trace.events[0].detail == "2"

    def test_unbounded_capacity(self):
        trace = EventTrace(capacity=0)
        for index in range(50):
            trace.record(float(index), 0, "tick")
        assert len(trace) == 50

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=-1)

    def test_timeline_rendering(self):
        trace = EventTrace()
        trace.record(1.5, 7, "promote", "became directory")
        text = trace.timeline()
        assert "1.500s" in text and "promote" in text
        assert EventTrace().timeline() == "(no events)"

    def test_kinds_counts(self):
        trace = EventTrace()
        trace.record(1.0, 0, "flood")
        trace.record(2.0, 0, "flood")
        trace.record(3.0, 0, "unicast")
        assert trace.kinds() == {"flood": 2, "unicast": 1}

    def test_event_str(self):
        event = TraceEvent(time=2.25, actor=12, kind="query", detail="#5")
        assert "node  12" in str(event)


class TestDeploymentTracing:
    def test_fig6_steps_traced_in_order(self, small_workload):
        """The Fig. 6 interaction leaves its footprint in the trace:
        promote → publish → query → (forward →) respond."""
        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(node_count=25, protocol="sariadne", election=FAST_ELECTION, seed=3),
            table=table,
        )
        trace = EventTrace()
        deployment.network.trace = trace
        deployment.run_until_directories(minimum=2)
        profile = small_workload.make_service(0)
        document = profile_to_xml(
            profile,
            annotations=table.annotate(profile.provided),
            codes_version=table.version,
        )
        deployment.publish_from(5, document, service_uri=profile.uri)
        request = small_workload.matching_request(profile)
        request_doc = request_to_xml(
            request,
            annotations=table.annotate(request.capabilities),
            codes_version=table.version,
        )
        response = deployment.query_from(20, request_doc)
        assert response is not None

        kinds = trace.kinds()
        for expected in ("promote", "publish", "query", "respond", "flood", "unicast"):
            assert kinds.get(expected, 0) >= 1, expected
        first_promote = next(e.time for e in trace.events if e.kind == "promote")
        first_publish = next(e.time for e in trace.events if e.kind == "publish")
        first_query = next(e.time for e in trace.events if e.kind == "query")
        first_respond = next(e.time for e in trace.events if e.kind == "respond")
        assert first_promote <= first_publish <= first_query <= first_respond

    def test_tracing_disabled_by_default(self, small_workload):
        table = CodeTable(OntologyRegistry(small_workload.ontologies))
        deployment = Deployment(
            DeploymentConfig(node_count=10, protocol="sariadne", election=FAST_ELECTION, seed=1, radio_range=400.0),
            table=table,
        )
        assert deployment.network.trace is None
        deployment.run_until_directories(minimum=1)  # must not crash

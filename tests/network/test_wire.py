"""Round-trip property tests for the live wire codec.

Every payload dataclass in :mod:`repro.network.messages` must survive
``encode_frame`` → ``decode_frame`` bit-exactly — including ``None``
optionals, unicode URIs/documents, empty and non-empty tuples, and raw
``bytes`` Bloom bitsets.  The strategies below are generated *from the
registry*, so a payload added to ``messages.py`` without codec coverage
fails ``test_every_payload_type_has_a_strategy`` instead of silently
shipping unserializable.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import messages as m
from repro.network.wire import (
    MAX_FRAME,
    PAYLOAD_TYPES,
    WireError,
    decode_frame,
    encode_frame,
)

# Unicode-heavy text: URIs and XML documents with astral and RTL
# characters, so the UTF-8 leg of the codec is genuinely exercised.
text = st.text(max_size=40)
uri = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=60
)
node_id = st.integers(min_value=0, max_value=2**31 - 1)
distance = st.integers(min_value=-(2**31), max_value=2**31 - 1)
result_rows = st.tuples()  # placeholder, replaced below


def _rows():
    return st.lists(
        st.tuples(uri, uri, distance).map(tuple), max_size=4
    ).map(tuple)


encoded_request = st.builds(
    m.EncodedRequest,
    protocol=st.sampled_from(["sariadne", "ariadne"]),
    codes_version=st.none() | st.integers(min_value=0, max_value=2**31),
    data=st.lists(
        st.tuples(uri, st.lists(uri, max_size=3).map(tuple)).map(tuple), max_size=3
    ).map(tuple),
)

#: One strategy per wire payload class, keyed like PAYLOAD_TYPES.
PAYLOAD_STRATEGIES: dict[str, st.SearchStrategy] = {
    "Hello": st.builds(m.Hello, node_id=node_id),
    "DirectoryAdvert": st.builds(m.DirectoryAdvert, directory_id=node_id),
    "ElectionCall": st.builds(m.ElectionCall, initiator=node_id, election_id=node_id),
    "ElectionReply": st.builds(
        m.ElectionReply,
        candidate=node_id,
        election_id=node_id,
        fitness=st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    "Appointment": st.builds(m.Appointment, directory_id=node_id, election_id=node_id),
    "DirectoryAnnounce": st.builds(
        m.DirectoryAnnounce, directory_id=node_id, reply_expected=st.booleans()
    ),
    "SummaryExchange": st.builds(
        m.SummaryExchange,
        directory_id=node_id,
        bloom_bits=st.binary(max_size=64),
        bloom_m=st.integers(min_value=0, max_value=2**20),
        bloom_k=st.integers(min_value=0, max_value=16),
    ),
    "SummaryRequest": st.builds(m.SummaryRequest, requester_directory=node_id),
    "DirectoryHandoff": st.builds(
        m.DirectoryHandoff,
        documents=st.lists(text, max_size=4).map(tuple),
        from_directory=node_id,
    ),
    "CodeRefreshResponse": st.builds(
        m.CodeRefreshResponse,
        version=node_id,
        codes=st.lists(st.tuples(uri, text).map(tuple), max_size=4).map(tuple),
    ),
    "PublishService": st.builds(m.PublishService, document=text),
    "WithdrawService": st.builds(m.WithdrawService, service_uri=uri),
    "EncodedRequest": encoded_request,
    "QueryRequest": st.builds(
        m.QueryRequest,
        query_id=node_id,
        document=text,
        wire=st.none() | encoded_request,
    ),
    "QueryResponse": st.builds(
        m.QueryResponse, query_id=node_id, results=_rows(), partial=st.booleans()
    ),
    "RemoteQuery": st.builds(
        m.RemoteQuery,
        query_id=node_id,
        document=text,
        origin_directory=node_id,
        wire=st.none() | encoded_request,
    ),
    "RemoteResponse": st.builds(m.RemoteResponse, query_id=node_id, results=_rows()),
    "TelemetryHello": st.builds(
        m.TelemetryHello,
        node_id=node_id,
        role=st.sampled_from(["directory", "loadgen", "collector"]),
        pid=node_id,
    ),
    "TelemetryBatch": st.builds(
        m.TelemetryBatch,
        node_id=node_id,
        records=st.lists(text, max_size=4).map(tuple),
        backlog=st.integers(min_value=0, max_value=2**20),
    ),
    "TelemetryQuery": st.builds(
        m.TelemetryQuery,
        kind=st.sampled_from(["top", "trace", "traces", "metrics"]),
        arg=text,
    ),
    "TelemetryReply": st.builds(m.TelemetryReply, kind=text, body=text),
}

envelopes = st.sampled_from(sorted(PAYLOAD_STRATEGIES)).flatmap(
    lambda kind: st.builds(
        m.Envelope,
        kind=st.just(kind),
        payload=PAYLOAD_STRATEGIES[kind],
        source=node_id,
        dest=st.none() | node_id,
        msg_id=node_id,
        ttl=st.integers(min_value=0, max_value=16),
        hops=st.integers(min_value=0, max_value=16),
        trace=st.none() | st.text(max_size=30),
    )
)


def test_every_payload_type_has_a_strategy():
    """A payload added to messages.py must gain codec coverage here."""
    assert set(PAYLOAD_STRATEGIES) == set(PAYLOAD_TYPES)


@given(envelope=envelopes)
@settings(max_examples=300, deadline=None)
def test_envelope_round_trips_exactly(envelope):
    frame = encode_frame(envelope)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == envelope


#: One deterministic instance per payload class (fast non-property smoke).
PAYLOAD_EXAMPLES = [
    m.Hello(3),
    m.DirectoryAdvert(1),
    m.ElectionCall(2, 9),
    m.ElectionReply(4, 9, 3.5),
    m.Appointment(4, 9),
    m.DirectoryAnnounce(1, reply_expected=False),
    m.SummaryExchange(1, b"\x00\xff\x10", 512, 4),
    m.SummaryRequest(2),
    m.DirectoryHandoff(("<doc a/>", "<doc b/>"), 1),
    m.CodeRefreshResponse(7, (("urn:c", "0.5:0.75"),)),
    m.PublishService("<profile/>"),
    m.WithdrawService("urn:svc:1"),
    m.EncodedRequest("sariadne", 7, (("cap", ("urn:a", "urn:b")),)),
    m.QueryRequest(5, "<req/>", m.EncodedRequest("sariadne", None)),
    m.QueryResponse(5, (("s", "c", 2),), partial=True),
    m.RemoteQuery(5, "<req/>", 0, None),
    m.RemoteResponse(5, ()),
    m.TelemetryHello(1, "loadgen", 4242),
    m.TelemetryBatch(1, ('{"type":"span","name":"query.handle"}',), backlog=3),
    m.TelemetryQuery("trace", "q0.5"),
    m.TelemetryReply("top", '{"nodes": {}}'),
]


@pytest.mark.parametrize(
    "payload", PAYLOAD_EXAMPLES, ids=lambda p: type(p).__name__
)
def test_each_payload_kind_round_trips(payload):
    envelope = m.Envelope(
        kind=type(payload).__name__, payload=payload, source=1, dest=2, msg_id=3, ttl=4, hops=5
    )
    assert decode_frame(encode_frame(envelope)[4:]) == envelope


def test_examples_cover_every_payload_type():
    assert {type(p).__name__ for p in PAYLOAD_EXAMPLES} == set(PAYLOAD_TYPES)


def test_unicode_uri_and_document_survive():
    payload = m.QueryRequest(7, "<req uri='urn:répro:𝓼ервис'>данные</req>")
    envelope = m.Envelope("QueryRequest", payload, 0, 1, 2)
    back = decode_frame(encode_frame(envelope)[4:])
    assert back.payload.document == payload.document


def test_none_fields_survive():
    envelope = m.Envelope(
        "QueryRequest", m.QueryRequest(1, "d", None), source=0, dest=None, msg_id=9
    )
    back = decode_frame(encode_frame(envelope)[4:])
    assert back.payload.wire is None
    assert back.dest is None


def test_trace_context_rides_the_frame():
    """A stamped traceparent survives; an unstamped frame omits the key."""
    traced = m.Envelope(
        "QueryRequest",
        m.QueryRequest(1, "d"),
        source=0,
        dest=1,
        msg_id=9,
        trace="00-q0.1-n1.c1-01",
    )
    assert decode_frame(encode_frame(traced)[4:]).trace == "00-q0.1-n1.c1-01"
    untraced = m.Envelope("QueryRequest", m.QueryRequest(1, "d"), 0, 1, 9)
    frame = encode_frame(untraced)
    assert b'"trace"' not in frame
    assert decode_frame(frame[4:]).trace is None


def test_decoded_sequences_are_tuples():
    """Agents hash and compare results; lists would break that."""
    rows = (("s", "c", 1), ("t", "d", 0))
    envelope = m.Envelope("QueryResponse", m.QueryResponse(1, rows), 0, 1, 2)
    back = decode_frame(encode_frame(envelope)[4:]).payload
    assert back.results == rows
    assert isinstance(back.results, tuple)
    assert all(isinstance(row, tuple) for row in back.results)


def test_unregistered_payload_rejected():
    class Rogue:
        pass

    with pytest.raises(WireError):
        encode_frame(m.Envelope("Rogue", Rogue(), 0, 1, 2))


def test_malformed_frames_rejected():
    with pytest.raises(WireError):
        decode_frame(b"not json")
    with pytest.raises(WireError):
        decode_frame(b'{"kind": "NoSuchPayload", "payload": {}}')
    with pytest.raises(WireError):
        decode_frame(b'{"kind": "Hello", "payload": {"wrong_field": 1}}')


def test_oversized_frame_rejected():
    big = m.Envelope(
        "PublishService", m.PublishService("x" * (MAX_FRAME + 1)), 0, 1, 2
    )
    with pytest.raises(WireError):
        encode_frame(big)

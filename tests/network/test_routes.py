"""Route cache soundness: cached answers == fresh BFS, under churn.

The fabric's :class:`~repro.network.topology.RouteCache` replaces a
fresh O(n²) breadth-first search per unicast/peer probe.  These tests
pin the contract that makes that safe: after *any* topology mutation —
moves, wired-link changes, node insertion, even direct position writes
that bypass the invalidation hooks — every cached hop count and path
must agree with the uncached reference BFS.
"""

import random

import pytest

from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position


def make_network(node_count=12, seed=0, radio_range=140.0):
    rng = random.Random(seed)
    network = Network(Simulator(), bounds=Bounds(400, 400), radio_range=radio_range)
    for nid in range(node_count):
        network.add_node(nid, Position(rng.uniform(0, 400), rng.uniform(0, 400)))
    return network, rng


def assert_routes_match_reference(network):
    """Every (source, dest) pair: cached hops/path == fresh BFS."""
    ids = list(network.nodes)
    for source in ids:
        for dest in ids:
            reference = network._bfs_shortest_path(source, dest)
            cached_hops = network.hop_count(source, dest)
            cached_path = network.shortest_path(source, dest)
            if reference is None:
                assert cached_hops is None and cached_path is None
            else:
                assert cached_hops == len(reference) - 1
                assert cached_path is not None
                assert len(cached_path) == len(reference)
                assert cached_path[0] == source and cached_path[-1] == dest
                # The cached path must be walkable on the real topology.
                for a, b in zip(cached_path, cached_path[1:]):
                    assert b in {n.node_id for n in network.neighbors(a)}


class TestRouteCacheChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cached_routes_equal_fresh_bfs_under_churn(self, seed):
        network, rng = make_network(seed=seed)
        assert_routes_match_reference(network)  # cold cache
        next_id = len(network.nodes)
        for step in range(15):
            op = rng.choice(["move", "wire", "unwire", "add", "raw_move"])
            ids = list(network.nodes)
            if op == "move":
                network.move_node(
                    rng.choice(ids), Position(rng.uniform(0, 400), rng.uniform(0, 400))
                )
            elif op == "wire":
                a, b = rng.sample(ids, 2)
                network.add_wired_link(a, b)
            elif op == "unwire":
                a, b = rng.sample(ids, 2)
                network.remove_wired_link(a, b)
            elif op == "add":
                network.add_node(
                    next_id, Position(rng.uniform(0, 400), rng.uniform(0, 400))
                )
                next_id += 1
            else:
                # Direct position write, bypassing move_node's invalidate —
                # the fingerprint check must still catch it.
                node = network.nodes[rng.choice(ids)]
                node.position = Position(rng.uniform(0, 400), rng.uniform(0, 400))
            assert_routes_match_reference(network)

    def test_direct_position_write_flushes_via_fingerprint(self):
        network = Network(Simulator(), radio_range=120.0)
        network.add_node(0, Position(0, 0))
        network.add_node(1, Position(100, 0))
        network.add_node(2, Position(200, 0))
        assert network.hop_count(0, 2) == 2
        # Teleport node 1 out of range without telling the network.
        network.nodes[1].position = Position(1000, 1000)
        assert network.hop_count(0, 2) is None
        assert network.shortest_path(0, 2) is None

    def test_stable_topology_runs_one_bfs_per_source(self):
        network, _rng = make_network(seed=5)
        ids = list(network.nodes)
        for _ in range(3):
            for source in ids:
                for dest in ids:
                    network.hop_count(source, dest)
        assert network.routes.stats.bfs_runs == len(ids)
        assert network.routes.stats.hits > 0

    def test_invalidate_bumps_epoch_and_reruns_bfs(self):
        network, _rng = make_network(seed=6)
        network.hop_count(0, 1)
        runs_before = network.routes.stats.bfs_runs
        epoch_before = network.routes.epoch
        network.add_wired_link(0, 1)
        assert network.routes.epoch > epoch_before
        assert network.hop_count(0, 1) == 1  # wired link short-circuits
        assert network.routes.stats.bfs_runs > runs_before

    def test_disabled_cache_matches_reference(self):
        network, _rng = make_network(seed=7)
        network.use_route_cache = False
        for source in network.nodes:
            for dest in network.nodes:
                reference = network._bfs_shortest_path(source, dest)
                assert network.shortest_path(source, dest) == reference
                expected = None if reference is None else len(reference) - 1
                assert network.hop_count(source, dest) == expected

    def test_self_route(self):
        network, _rng = make_network(node_count=3, seed=8)
        assert network.hop_count(1, 1) == 0
        assert network.shortest_path(1, 1) == [1]

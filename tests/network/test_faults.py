"""Deterministic fault injection: plans, fabric integration, replay.

Covers the three contracts the chaos layer makes:

* fabric semantics — crashed nodes are unreachable and non-forwarding,
  cut links and partitions prune connectivity (and heal), chaos windows
  lose/duplicate/delay messages;
* determinism — any seeded plan replayed over the same scenario yields
  bitwise-identical lifecycle/trace signatures (hypothesis property);
* zero-fault transparency — installing an *empty* plan leaves an
  instrumented run identical to running with no plan at all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import fig10_traced_run
from repro.network.faults import (
    CrashNode,
    CutLink,
    FaultPlan,
    MessageChaos,
    PartitionNetwork,
)
from repro.network.node import Network, ProtocolAgent
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position
from repro.obs import Observability, RingBufferSink


class Recorder(ProtocolAgent):
    """Collects every delivered payload."""

    def __init__(self) -> None:
        super().__init__()
        self.received: list[object] = []
        self.crashes: list[bool] = []
        self.restarts = 0

    def on_message(self, envelope) -> None:
        self.received.append(envelope.payload)

    def on_crash(self, wipe_state: bool) -> None:
        self.crashes.append(wipe_state)

    def on_restart(self) -> None:
        self.restarts += 1


def chain_network(count: int = 4, spacing: float = 50.0):
    """A line topology: node i at (i*spacing, 0), radio range ~1 hop."""
    sim = Simulator()
    network = Network(
        sim, bounds=Bounds(500, 100), radio_range=spacing * 1.2, seed=1
    )
    agents = {}
    for nid in range(count):
        node = network.add_node(nid, Position(nid * spacing, 0.0))
        agents[nid] = node.add_agent(Recorder())
    network.start()
    return sim, network, agents


class TestFaultPlanSchema:
    def test_builder_chains_and_validates(self):
        plan = (
            FaultPlan(seed=7)
            .crash(at=10.0, node=2, wipe_state=False, restart_at=20.0)
            .cut_link(at=5.0, a=0, b=1, heal_at=15.0)
            .partition(at=30.0, groups=((0, 1), (2, 3)), heal_at=40.0)
            .chaos(start=1.0, stop=2.0, loss=0.5)
        )
        assert len(plan.faults) == 4
        assert not plan.is_empty

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CrashNode(at=-1.0, node=0),
            lambda: CrashNode(at=5.0, node=0, restart_at=5.0),
            lambda: CutLink(at=0.0, a=1, b=1),
            lambda: CutLink(at=3.0, a=0, b=1, heal_at=2.0),
            lambda: PartitionNetwork(at=0.0, groups=()),
            lambda: PartitionNetwork(at=0.0, groups=((1, 2), (2, 3))),
            lambda: MessageChaos(start=0.0, loss=1.0),
            lambda: MessageChaos(start=5.0, stop=4.0),
        ],
    )
    def test_invalid_faults_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan().add(object())

    def test_dict_round_trip(self):
        plan = (
            FaultPlan(seed=3)
            .crash(at=10.0, node=2, restart_at=20.0)
            .partition(at=30.0, groups=((0, 1), (2,)), heal_at=40.0)
            .chaos(start=1.0, loss=0.25, duplicate=0.1)
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.signature() == plan.signature()

    def test_from_dict_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"seed": 0, "faults": [{"type": "Meteor"}]})


class TestCrashRestart:
    def test_crashed_node_receives_nothing(self):
        sim, network, agents = chain_network()
        network.crash_node(2)
        network.nodes[0].broadcast("hello", ttl=4)
        sim.run(until=1.0)
        assert agents[2].received == []
        # The chain is severed at node 2: node 3 is unreachable too.
        assert agents[3].received == []
        assert agents[1].received == ["hello"]

    def test_crash_notifies_agents_and_restart_recovers(self):
        sim, network, agents = chain_network()
        network.crash_node(2, wipe_state=False)
        assert agents[2].crashes == [False]
        assert not network.is_up(2)
        network.restart_node(2)
        assert agents[2].restarts == 1
        assert network.is_up(2)
        network.nodes[0].broadcast("again", ttl=4)
        sim.run(until=1.0)
        assert agents[3].received == ["again"]

    def test_crashed_node_cannot_send(self):
        sim, network, agents = chain_network()
        network.crash_node(1)
        assert not network.nodes[1].unicast(0, "nope")
        network.nodes[1].broadcast("nope", ttl=2)
        sim.run(until=1.0)
        assert agents[0].received == []
        assert network.stats.drops_down >= 2

    def test_unicast_to_crashed_node_fails(self):
        _sim, network, _agents = chain_network()
        network.crash_node(3)
        assert not network.nodes[2].unicast(3, "anyone home?")

    def test_crash_is_idempotent(self):
        _sim, network, agents = chain_network()
        network.crash_node(1)
        network.crash_node(1)
        assert agents[1].crashes == [True]
        network.restart_node(1)
        network.restart_node(1)
        assert agents[1].restarts == 1


class TestLinkAndPartition:
    def test_cut_link_reroutes_and_heals(self):
        sim, network, _agents = chain_network()
        assert network.hop_count(0, 3) == 3
        network.cut_link(1, 2)
        assert network.hop_count(0, 3) is None
        network.heal_link(1, 2)
        assert network.hop_count(0, 3) == 3
        del sim

    def test_cut_wired_link(self):
        sim, network, agents = chain_network()
        network.add_wired_link(0, 3)
        assert network.hop_count(0, 3) == 1
        network.cut_link(0, 3)
        assert network.hop_count(0, 3) == 3  # radio path remains
        del sim, agents

    def test_partition_isolates_and_heals(self):
        sim, network, agents = chain_network()
        network.set_partition(((0, 1), (2, 3)))
        assert network.hop_count(1, 2) is None
        assert network.hop_count(0, 1) == 1
        assert network.hop_count(2, 3) == 1
        network.nodes[0].broadcast("island", ttl=4)
        sim.run(until=1.0)
        assert agents[1].received == ["island"]
        assert agents[2].received == []
        network.heal_partition()
        assert network.hop_count(1, 2) == 1

    def test_unlisted_nodes_share_remainder_island(self):
        _sim, network, _agents = chain_network()
        network.set_partition(((0,),))
        # 1, 2, 3 are unlisted: they stay connected to each other.
        assert network.hop_count(1, 3) == 2
        assert network.hop_count(0, 1) is None


class TestScheduledExecution:
    def test_timed_faults_fire_and_emit_events(self):
        sim, network, agents = chain_network()
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        from repro.obs import install

        install(obs, network)
        plan = (
            FaultPlan()
            .crash(at=1.0, node=2, restart_at=2.0)
            .cut_link(at=1.0, a=0, b=1, heal_at=2.0)
            .partition(at=3.0, groups=((0, 1), (2, 3)), heal_at=4.0)
        )
        injector = network.install_fault_plan(plan)
        sim.run(until=5.0)
        assert injector.stats.crashes == 1
        assert injector.stats.restarts == 1
        assert injector.stats.links_cut == 1
        assert injector.stats.partitions_healed == 1
        kinds = [event.kind for event in sink.events]
        for expected in (
            "fault.node_crash",
            "fault.node_restart",
            "fault.link_cut",
            "fault.link_healed",
            "fault.partition",
            "fault.partition_healed",
        ):
            assert expected in kinds
        assert agents[2].crashes == [True]
        assert agents[2].restarts == 1

    def test_second_plan_rejected(self):
        _sim, network, _agents = chain_network()
        network.install_fault_plan(FaultPlan())
        with pytest.raises(RuntimeError):
            network.install_fault_plan(FaultPlan())


class TestMessageChaos:
    def _run_traffic(self, network, sim, messages: int = 200) -> None:
        for index in range(messages):
            network.nodes[0].unicast(3, f"msg-{index}")
            sim.run(until=sim.now + 0.05)

    def test_chaos_window_loses_and_duplicates(self):
        sim, network, agents = chain_network()
        plan = FaultPlan(seed=5).chaos(start=0.0, loss=0.3, duplicate=0.2)
        injector = network.install_fault_plan(plan)
        self._run_traffic(network, sim)
        assert injector.stats.messages_lost > 0
        assert injector.stats.messages_duplicated > 0
        delivered = len(agents[3].received)
        assert delivered < 200  # losses happened
        expected = 200 - injector.stats.messages_lost + injector.stats.messages_duplicated
        assert delivered == expected

    def test_chaos_outside_window_is_transparent(self):
        sim, network, agents = chain_network()
        plan = FaultPlan(seed=5).chaos(start=100.0, stop=200.0, loss=0.9)
        injector = network.install_fault_plan(plan)
        self._run_traffic(network, sim, messages=50)
        assert injector.stats.messages_lost == 0
        assert len(agents[3].received) == 50

    def test_extra_delay_slows_delivery(self):
        sim, network, agents = chain_network()
        network.install_fault_plan(FaultPlan(seed=2).chaos(start=0.0, extra_delay=0.5))
        network.nodes[0].unicast(3, "slow")
        sim.run(until=0.1)
        baseline_arrival = not agents[3].received
        sim.run(until=2.0)
        assert agents[3].received == ["slow"]
        assert baseline_arrival  # it had not arrived at the no-chaos ETA

    def test_chaos_uses_its_own_rng_stream(self):
        """The injector must not consume ``network.rng`` draws: two runs,
        one with a (non-firing) chaos plan, keep identical fabric RNG
        state — the zero-fault determinism cornerstone."""
        _sim_a, network_a, _ = chain_network()
        _sim_b, network_b, _ = chain_network()
        network_b.install_fault_plan(FaultPlan(seed=99).chaos(start=1e9, loss=0.5))
        assert network_a.rng.getstate() == network_b.rng.getstate()
        network_b.nodes[0].unicast(3, "x")
        assert network_a.rng.getstate() == network_b.rng.getstate()


def traced_signatures(fault_plan):
    sink = RingBufferSink()
    obs = Observability(sinks=[sink])
    summary = fig10_traced_run(
        obs, seed=42, directory_count=3, services=2, fault_plan=fault_plan
    )
    return (
        summary,
        [span.signature() for span in sink.spans],
        [event.signature() for event in sink.events],
    )


# Strategy: small but structurally diverse plans over the fig10 topology
# (nodes 0..4; node 3 is the client, 4 joins late).
_fault_strategy = st.lists(
    st.one_of(
        st.builds(
            CrashNode,
            at=st.floats(1.0, 20.0),
            node=st.integers(0, 2),
            wipe_state=st.booleans(),
        ),
        st.builds(
            CutLink,
            at=st.floats(1.0, 20.0),
            a=st.just(0),
            b=st.integers(1, 2),
        ),
        st.builds(
            MessageChaos,
            start=st.floats(0.0, 10.0),
            loss=st.floats(0.0, 0.6),
            duplicate=st.floats(0.0, 0.4),
            extra_delay=st.floats(0.0, 0.02),
        ),
    ),
    min_size=0,
    max_size=3,
)


class TestReplayDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), faults=_fault_strategy)
    def test_any_seeded_plan_replays_bitwise_identically(self, seed, faults):
        plan_a = FaultPlan(seed=seed, faults=faults)
        plan_b = FaultPlan.from_dict(plan_a.to_dict())  # independent copy
        summary_a, spans_a, events_a = traced_signatures(plan_a)
        summary_b, spans_b, events_b = traced_signatures(plan_b)
        assert summary_a == summary_b
        assert spans_a == spans_b
        assert events_a == events_b

    def test_zero_fault_plan_reproduces_unfaulted_run_exactly(self):
        summary_none, spans_none, events_none = traced_signatures(None)
        summary_empty, spans_empty, events_empty = traced_signatures(FaultPlan(seed=123))
        assert summary_none == summary_empty
        assert spans_none == spans_empty
        assert events_none == events_empty

"""Tests for the §4 directory election protocol."""

import pytest

from repro.network.election import ElectionAgent, ElectionConfig
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position, grid_positions

FAST = ElectionConfig(
    advert_interval=5.0,
    advert_hops=2,
    directory_timeout=10.0,
    check_interval=2.0,
    reply_window=1.0,
    election_hops=2,
)


def build(count=9, radio_range=160.0, capable=None, config=FAST, promoted=None):
    sim = Simulator()
    network = Network(sim, bounds=Bounds(300, 300), radio_range=radio_range, seed=1)
    agents = {}
    positions = grid_positions(count, Bounds(300, 300))
    for i in range(count):
        node = network.add_node(i, positions[i])
        agent = ElectionAgent(
            config=config,
            directory_capable=(capable is None or i in capable),
            on_promoted=(lambda nid=i: promoted.append(nid)) if promoted is not None else None,
        )
        node.add_agent(agent)
        agents[i] = agent
    network.start()
    return sim, network, agents


class TestElection:
    def test_directory_emerges_after_timeout(self):
        sim, _network, agents = build()
        sim.run(until=60.0)
        assert any(agent.is_directory for agent in agents.values())

    def test_nodes_learn_their_directory(self):
        sim, _network, agents = build()
        sim.run(until=120.0)
        directors = {i for i, a in agents.items() if a.is_directory}
        covered = sum(
            1 for a in agents.values() if a.current_directory is not None
        )
        assert directors
        assert covered >= len(agents) - 1

    def test_only_capable_nodes_serve(self):
        sim, _network, agents = build(capable={3})
        sim.run(until=120.0)
        serving = {i for i, a in agents.items() if a.is_directory}
        assert serving == {3}

    def test_promotion_callback_fires(self):
        promoted = []
        sim, _network, _agents = build(promoted=promoted)
        sim.run(until=60.0)
        assert promoted

    def test_fitness_prefers_coverage(self):
        sim = Simulator()
        network = Network(sim, bounds=Bounds(300, 300), radio_range=150.0)
        # Center node hears everyone; corners hear only the center.
        center = network.add_node(0, Position(150, 150))
        corner = network.add_node(1, Position(50, 50))
        network.add_node(2, Position(250, 250))
        center_agent = ElectionAgent(config=FAST)
        corner_agent = ElectionAgent(config=FAST)
        center.add_agent(center_agent)
        corner.add_agent(corner_agent)
        network.nodes[2].add_agent(ElectionAgent(config=FAST))
        network.start()
        assert center_agent.fitness() > corner_agent.fitness()

    def test_mobile_nodes_penalized(self):
        sim, network, _ = build(count=2)
        stable = ElectionAgent(config=FAST, is_mobile=False)
        mobile = ElectionAgent(config=FAST, is_mobile=True)
        stable.attach(network.nodes[0])
        mobile.attach(network.nodes[0])
        assert mobile.fitness() <= stable.fitness()

    def test_adverts_suppress_new_elections(self):
        sim, _network, agents = build()
        sim.run(until=120.0)
        directors_early = {i for i, a in agents.items() if a.is_directory}
        sim.run(until=240.0)
        directors_late = {i for i, a in agents.items() if a.is_directory}
        # Advertisements keep re-elections from multiplying directories
        # without bound (vicinity nodes stay quiet).
        assert len(directors_late) <= len(directors_early) + 2

    def test_step_down_stops_advertising(self):
        sim, network, agents = build()
        sim.run(until=60.0)
        director_id = next(i for i, a in agents.items() if a.is_directory)
        agents[director_id].step_down()
        assert not agents[director_id].is_directory

    def test_reelection_after_directory_leaves(self):
        sim, network, agents = build()
        sim.run(until=60.0)
        directors = [i for i, a in agents.items() if a.is_directory]
        for i in directors:
            agents[i].step_down()
            agents[i].directory_capable = False
        sim.run(until=sim.now + 120.0)
        new_directors = [i for i, a in agents.items() if a.is_directory]
        assert new_directors
        assert set(new_directors).isdisjoint(directors)

"""Live-fabric unit tests: handshake, routing, failure mapping.

The equivalence suite (``test_live_equivalence``) proves whole-protocol
fidelity; these tests pin the fabric-level semantics — Hello-keyed
connection reuse, clique broadcast, and the transport-failure contract
(``unicast -> False``, never ``OSError``, with client outcomes mapping
to ``SEND_FAILED`` / ``EXHAUSTED``).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.network.live import LiveFabric, parse_address
from repro.network.messages import DirectoryAdvert, Envelope, PublishService
from repro.network.node import ProtocolAgent


class Recorder(ProtocolAgent):
    """Collects every delivered envelope."""

    def __init__(self):
        super().__init__()
        self.got: list[Envelope] = []

    def on_message(self, envelope: Envelope) -> None:
        self.got.append(envelope)


def run(coro):
    return asyncio.run(coro)


def test_parse_address():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("tcp:127.0.0.1:9000") == ("tcp", "127.0.0.1", "9000")
    for bad in ("x", "udp:1:2", "tcp:nohost", "unix:", "tcp:h:port"):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_unicast_and_reply_over_one_socket(tmp_path):
    """The dialing side never listens; replies ride the inbound socket."""

    async def scenario():
        address = f"unix:{os.path.join(str(tmp_path), 's.sock')}"
        server = LiveFabric(0, listen=address)
        client = LiveFabric(1, peers={0: address})
        server_log = server.node.add_agent(Recorder())
        client_log = client.node.add_agent(Recorder())
        await server.start()
        await client.start()
        assert client.node.unicast(0, PublishService("<doc/>"))
        await asyncio.sleep(0.2)
        assert [e.payload for e in server_log.got] == [PublishService("<doc/>")]
        # Hello registered the client: the server can reply and broadcast.
        assert server.is_up(1)
        assert server.hop_count(0, 1) == 1
        assert server.node.unicast(1, PublishService("reply"))
        server.node.broadcast(DirectoryAdvert(0), ttl=2)
        await asyncio.sleep(0.2)
        payloads = [e.payload for e in client_log.got]
        assert PublishService("reply") in payloads
        assert DirectoryAdvert(0) in payloads
        await client.close()
        await server.close()

    run(scenario())


def test_envelope_metadata_on_the_wire(tmp_path):
    async def scenario():
        address = f"unix:{os.path.join(str(tmp_path), 's.sock')}"
        server = LiveFabric(0, listen=address)
        client = LiveFabric(1, peers={0: address})
        log = server.node.add_agent(Recorder())
        await server.start()
        await client.start()
        client.node.unicast(0, PublishService("x"))
        await asyncio.sleep(0.2)
        (envelope,) = log.got
        assert envelope.source == 1
        assert envelope.dest == 0
        assert envelope.kind == "PublishService"
        assert envelope.hops == 2  # one queued hop + the delivery bump
        await client.close()
        await server.close()

    run(scenario())


def test_unknown_peer_unicast_returns_false():
    async def scenario():
        fabric = LiveFabric(0)
        await fabric.start()
        assert fabric.node.unicast(99, PublishService("x")) is False
        assert fabric.stats.drops_unreachable == 1
        await fabric.close()

    run(scenario())


def test_connect_refused_marks_link_dead_not_raises(tmp_path):
    """The OSError-mapping satellite: refused dials surface as a dead
    link (``unicast -> False``), never as an exception in agent code."""

    async def scenario():
        nowhere = f"unix:{os.path.join(str(tmp_path), 'absent.sock')}"
        fabric = LiveFabric(0, peers={9: nowhere})
        fabric.connect_retries = 2
        fabric.connect_backoff = 0.01
        await fabric.start()
        # Optimistic while the link task is still dialing/backing off.
        assert fabric.node.unicast(9, PublishService("x")) is True
        await asyncio.sleep(0.3)
        assert fabric.is_up(9) is False
        assert fabric.node.unicast(9, PublishService("x")) is False
        assert fabric.hop_count(0, 9) is None
        await fabric.close()

    run(scenario())


def test_client_outcomes_on_dead_directory(tmp_path):
    """End to end through the client agent: a refused directory yields
    ``EXHAUSTED`` for the in-flight query (optimistic send, retries
    elapse) and ``SEND_FAILED`` once the link is known dead."""
    from repro.protocols.base import QueryOutcome
    from repro.protocols.sariadne import SAriadneClientAgent

    async def scenario():
        nowhere = f"unix:{os.path.join(str(tmp_path), 'absent.sock')}"
        fabric = LiveFabric(1, peers={0: nowhere})
        fabric.connect_retries = 2
        fabric.connect_backoff = 0.01
        client = fabric.node.add_agent(SAriadneClientAgent(lambda: 0))
        await fabric.start()
        ticket = client.query("<req/>", retries=1, retry_timeout=0.1)
        assert ticket.outcome is QueryOutcome.PENDING  # optimistic accept
        deadline = asyncio.get_event_loop().time() + 5.0
        while ticket.outcome is QueryOutcome.PENDING:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.01)
        assert ticket.outcome is QueryOutcome.EXHAUSTED
        # The link is dead now: the failure is synchronous and typed.
        second = client.query("<req/>")
        assert second.outcome is QueryOutcome.SEND_FAILED
        assert not second
        await fabric.close()

    run(scenario())


def test_broadcast_skips_dead_links(tmp_path):
    async def scenario():
        good = f"unix:{os.path.join(str(tmp_path), 'good.sock')}"
        bad = f"unix:{os.path.join(str(tmp_path), 'bad.sock')}"
        server = LiveFabric(0, listen=good)
        log = server.node.add_agent(Recorder())
        await server.start()
        fabric = LiveFabric(1, peers={0: good, 9: bad})
        fabric.connect_retries = 1
        fabric.connect_backoff = 0.01
        await fabric.start()
        await asyncio.sleep(0.2)  # let the bad link die
        fabric.node.broadcast(DirectoryAdvert(1), ttl=2)
        await asyncio.sleep(0.2)
        assert [e.payload for e in log.got] == [DirectoryAdvert(1)]
        assert fabric.neighbors(1) == [server.nodes[0]] or [
            n.node_id for n in fabric.neighbors(1)
        ] == [0]
        await fabric.close()
        await server.close()

    run(scenario())


def test_duplicate_peer_id_rejected():
    async def scenario():
        with pytest.raises(ValueError):
            LiveFabric(0, peers={0: "unix:/tmp/x.sock"})

    run(scenario())


def test_election_and_advert_over_live_fabric(tmp_path):
    """The §4 loop on sockets: a capable node self-elects after silence
    and its adverts teach a plain client who the directory is."""
    from repro.network.election import ElectionAgent, ElectionConfig

    fast = ElectionConfig(
        advert_interval=0.2, directory_timeout=0.15, check_interval=0.05, reply_window=0.05
    )

    async def scenario():
        address = f"unix:{os.path.join(str(tmp_path), 's.sock')}"
        server = LiveFabric(0, listen=address)
        server_election = server.node.add_agent(ElectionAgent(config=fast))
        client = LiveFabric(1, peers={0: address})
        client_election = client.node.add_agent(
            ElectionAgent(config=fast, directory_capable=False)
        )
        await server.start()
        await client.start()
        deadline = asyncio.get_event_loop().time() + 5.0
        while client_election.current_directory is None:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.02)
        assert server_election.is_directory
        assert client_election.current_directory == 0
        await client.close()
        await server.close()

    run(scenario())

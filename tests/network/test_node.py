"""Tests for the wireless fabric: neighbors, flooding, unicast routing."""

import pytest

from repro.network.messages import Envelope, PublishService, payload_size
from repro.network.node import Network, ProtocolAgent
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position


class Recorder(ProtocolAgent):
    """Collects every delivered envelope."""

    def __init__(self):
        super().__init__()
        self.received: list[Envelope] = []

    def on_message(self, envelope: Envelope) -> None:
        self.received.append(envelope)


def line_network(count=4, spacing=100.0, radio_range=120.0):
    """Nodes on a line, each hearing only its direct neighbors."""
    sim = Simulator()
    network = Network(sim, bounds=Bounds(1000, 100), radio_range=radio_range)
    recorders = {}
    for i in range(count):
        node = network.add_node(i, Position(spacing * i, 50.0))
        recorders[i] = node.add_agent(Recorder())
    network.start()
    return sim, network, recorders


class TestNeighbors:
    def test_line_adjacency(self):
        _sim, network, _ = line_network()
        assert {n.node_id for n in network.neighbors(1)} == {0, 2}
        assert {n.node_id for n in network.neighbors(0)} == {1}

    def test_connectivity(self):
        _sim, network, _ = line_network()
        assert network.is_connected()

    def test_partition_detected(self):
        sim = Simulator()
        network = Network(sim, radio_range=50.0)
        network.add_node(0, Position(0, 0))
        network.add_node(1, Position(400, 400))
        assert not network.is_connected()

    def test_duplicate_node_id_rejected(self):
        sim = Simulator()
        network = Network(sim)
        network.add_node(0, Position(0, 0))
        with pytest.raises(ValueError):
            network.add_node(0, Position(1, 1))


class TestFlooding:
    def test_ttl_limits_reach(self):
        sim, network, recorders = line_network(count=5)
        network.nodes[0].broadcast(PublishService("<x/>"), ttl=2)
        sim.run()
        assert len(recorders[1].received) == 1
        assert len(recorders[2].received) == 1
        assert recorders[3].received == []  # 3 hops away

    def test_duplicate_suppression(self):
        sim, network, recorders = line_network(count=3, spacing=50.0, radio_range=200.0)
        # Full mesh: everyone hears everyone; each node must deliver once.
        network.nodes[0].broadcast(PublishService("<x/>"), ttl=3)
        sim.run()
        assert len(recorders[1].received) == 1
        assert len(recorders[2].received) == 1

    def test_origin_does_not_self_deliver(self):
        sim, network, recorders = line_network(count=3)
        network.nodes[1].broadcast(PublishService("<x/>"), ttl=2)
        sim.run()
        assert recorders[1].received == []

    def test_hop_count_recorded(self):
        sim, network, recorders = line_network(count=4)
        network.nodes[0].broadcast(PublishService("<x/>"), ttl=3)
        sim.run()
        assert recorders[1].received[0].hops == 1
        assert recorders[2].received[0].hops == 2

    def test_flood_stats(self):
        sim, network, _ = line_network(count=4)
        network.nodes[0].broadcast(PublishService("<x/>"), ttl=3)
        sim.run()
        assert network.stats.broadcasts >= 1
        assert network.stats.deliveries == 3


class TestUnicast:
    def test_direct_delivery(self):
        sim, network, recorders = line_network()
        assert network.nodes[0].unicast(1, PublishService("<x/>"))
        sim.run()
        assert len(recorders[1].received) == 1
        assert recorders[1].received[0].dest == 1

    def test_multi_hop_delivery(self):
        sim, network, recorders = line_network(count=5)
        assert network.nodes[0].unicast(4, PublishService("<x/>"))
        sim.run()
        assert len(recorders[4].received) == 1
        assert recorders[4].received[0].hops == 4

    def test_unreachable_dropped(self):
        sim = Simulator()
        network = Network(sim, radio_range=10.0)
        a = network.add_node(0, Position(0, 0))
        network.add_node(1, Position(400, 400))
        assert not a.unicast(1, PublishService("<x/>"))
        assert network.stats.drops_unreachable == 1

    def test_unknown_destination_raises(self):
        sim, network, _ = line_network()
        with pytest.raises(KeyError):
            network.nodes[0].unicast(99, PublishService("<x/>"))

    def test_latency_scales_with_hops(self):
        sim, network, recorders = line_network(count=5)
        timestamps = {}

        class Stamper(ProtocolAgent):
            def __init__(self, label):
                super().__init__()
                self.label = label

            def on_message(self, envelope):
                timestamps[self.label] = sim.now

        network.nodes[1].add_agent(Stamper("near"))
        network.nodes[4].add_agent(Stamper("far"))
        network.nodes[0].unicast(1, PublishService("<x/>"))
        network.nodes[0].unicast(4, PublishService("<x/>"))
        sim.run()
        assert timestamps["far"] > timestamps["near"]


class TestPayloadSize:
    def test_document_payload_counts_length(self):
        small = payload_size(PublishService("<x/>"))
        large = payload_size(PublishService("<x>" + "a" * 1000 + "</x>"))
        assert large > small

    def test_fixed_payload_default(self):
        from repro.network.messages import DirectoryAdvert

        assert payload_size(DirectoryAdvert(1)) == 64

"""Simulator vs. live-fabric equivalence: the fig10 workload returns
bit-identical query outcome rows on both runtimes.

The tentpole guarantee of the Runtime/Transport redesign: the *same*
agent code objects (S-Ariadne directory + client, §4 backbone machinery)
produce the same match sets and semantic distances whether messages are
Python references on the discrete-event heap or wire frames on real
unix-domain sockets.  Only timings may differ — result rows must not.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.codes import CodeTable
from repro.network.messages import PublishService
from repro.network.node import Network
from repro.network.simulator import Simulator
from repro.network.topology import Bounds, Position
from repro.ontology.registry import OntologyRegistry
from repro.protocols.base import QueryOutcome
from repro.protocols.sariadne import SAriadneClientAgent, SAriadneDirectoryAgent
from repro.services.generator import ServiceWorkload, WorkloadShape
from repro.services.xml_codec import profile_to_xml, request_to_xml

SEED = 42
SERVICES = 4
DIRECTORIES = 2
#: Same push delay on both fabrics — equivalence compares like with like.
SUMMARY_PUSH_DELAY = 0.1


def _catalog():
    workload = ServiceWorkload(WorkloadShape(), seed=SEED)
    table = CodeTable(OntologyRegistry(workload.ontologies))
    return workload, table


def _profile_doc(workload, table, index):
    profile = workload.make_service(index)
    return profile_to_xml(
        profile, annotations=table.annotate(profile.provided), codes_version=table.version
    )


def _request_doc(workload, table, index):
    request = workload.matching_request(workload.make_service(index))
    return request_to_xml(
        request, annotations=table.annotate(request.capabilities), codes_version=table.version
    )


def _placement(index):
    """Publication targets alternate directories, so odd-indexed queries
    exercise the §4 forwarding path (Bloom admit → RemoteQuery →
    RemoteResponse merge) — the interesting half of the equivalence."""
    return index % DIRECTORIES


def run_simulated() -> list[tuple]:
    """The fig10 publish/query workload on the discrete-event fabric."""
    workload, table = _catalog()
    sim = Simulator()
    network = Network(sim, bounds=Bounds(100, 100), radio_range=500.0, seed=SEED)
    directories = {}
    for nid in range(DIRECTORIES):
        node = network.add_node(nid, Position(10.0 * nid, 10.0))
        agent = node.add_agent(SAriadneDirectoryAgent(table, forward_window=0.5))
        agent.summary_push_delay = SUMMARY_PUSH_DELAY
        directories[nid] = agent
    client_node = network.add_node(DIRECTORIES, Position(10.0 * DIRECTORIES, 20.0))
    client = client_node.add_agent(SAriadneClientAgent(lambda: 0))
    network.start()
    for agent in directories.values():
        agent.join_backbone()
    sim.run(until=5.0)
    for index in range(SERVICES):
        document = _profile_doc(workload, table, index)
        client_node.unicast(_placement(index), PublishService(document))
    sim.run(until=sim.now + 3.0)
    rows = []
    for index in range(SERVICES):
        ticket = client.query(_request_doc(workload, table, index))
        sim.run(until=sim.now + 5.0)
        assert ticket.outcome is QueryOutcome.ANSWERED
        _latency, results = client.responses[ticket.query_id]
        rows.append(results)
    return rows


async def run_live(tmp_path) -> list[tuple]:
    """The same workload over real unix-domain sockets in one loop."""
    from repro.network.live import LiveFabric

    workload, table = _catalog()
    addresses = {
        nid: f"unix:{os.path.join(tmp_path, f'dir{nid}.sock')}"
        for nid in range(DIRECTORIES)
    }
    fabrics = {}
    directories = {}
    for nid in range(DIRECTORIES):
        peers = {other: addresses[other] for other in addresses if other != nid}
        fabric = LiveFabric(nid, listen=addresses[nid], peers=peers, seed=SEED)
        agent = fabric.node.add_agent(
            SAriadneDirectoryAgent(table, forward_window=0.5)
        )
        agent.summary_push_delay = SUMMARY_PUSH_DELAY
        fabrics[nid] = fabric
        directories[nid] = agent
    client_fabric = LiveFabric(DIRECTORIES, peers=dict(addresses), seed=SEED)
    client = client_fabric.node.add_agent(SAriadneClientAgent(lambda: 0))
    fabrics[DIRECTORIES] = client_fabric
    try:
        for fabric in fabrics.values():
            await fabric.start()
        for agent in directories.values():
            agent.join_backbone()
        await asyncio.sleep(0.5)  # backbone formation + summary exchange
        for index in range(SERVICES):
            document = _profile_doc(workload, table, index)
            assert client_fabric.node.unicast(_placement(index), PublishService(document))
        await asyncio.sleep(3 * SUMMARY_PUSH_DELAY + 0.3)  # summary refresh
        rows = []
        for index in range(SERVICES):
            ticket = client.query(_request_doc(workload, table, index))
            assert ticket, f"query {index} not sent: {ticket.outcome}"
            deadline = asyncio.get_event_loop().time() + 10.0
            while ticket.outcome is QueryOutcome.PENDING:
                assert asyncio.get_event_loop().time() < deadline, "query timed out"
                await asyncio.sleep(0.002)
            assert ticket.outcome is QueryOutcome.ANSWERED
            _latency, results = client.responses[ticket.query_id]
            rows.append(results)
        return rows
    finally:
        for fabric in fabrics.values():
            await fabric.close()


def test_fig10_rows_identical_across_runtimes(tmp_path):
    """Match sets and distances agree row-for-row across both fabrics."""
    simulated = run_simulated()
    live = asyncio.run(run_live(str(tmp_path)))
    assert len(simulated) == SERVICES
    # Every query has a non-empty answer (each request targets a
    # published service), and remote placements genuinely crossed the
    # backbone on both fabrics.
    for index, rows in enumerate(simulated):
        assert rows, f"query {index} found nothing in the simulator"
    assert simulated == live


def test_live_rows_are_real_matches(tmp_path):
    """Sanity on the live side alone: rows are (service, capability,
    distance) triples for the published services."""
    live = asyncio.run(run_live(str(tmp_path)))
    workload, _table = _catalog()
    published = {workload.make_service(i).uri for i in range(SERVICES)}
    for rows in live:
        assert rows
        for service_uri, capability_uri, distance in rows:
            assert service_uri in published
            assert isinstance(distance, int)


@pytest.mark.parametrize("index", range(SERVICES))
def test_placement_alternates(index):
    """The scenario really exercises both local and forwarded paths."""
    assert _placement(index) in range(DIRECTORIES)
    assert _placement(0) != _placement(1)

"""Both engines satisfy the structural Runtime/Transport protocols.

These are the API-redesign invariants: agents only touch the structural
surface, so anything satisfying it hosts them.  The conformance is
checked with ``isinstance`` against the ``runtime_checkable`` protocols
plus behavioural probes for the parts ``isinstance`` cannot see
(cancellation, periodic rearming, monotonic ``now``).
"""

from __future__ import annotations

import asyncio

from repro.network.node import Network, ProtocolAgent
from repro.network.runtime import Cancellable, Runtime, Transport
from repro.network.simulator import Simulator


def test_simulator_satisfies_runtime():
    sim = Simulator()
    assert isinstance(sim, Runtime)
    assert isinstance(sim.schedule(1.0, lambda: None), Cancellable)


def test_live_runtime_satisfies_runtime():
    from repro.network.live import LiveRuntime

    async def check():
        runtime = LiveRuntime()
        assert isinstance(runtime, Runtime)
        assert isinstance(runtime.schedule(1.0, lambda: None), Cancellable)

    asyncio.run(check())


def test_net_node_satisfies_transport():
    network = Network(Simulator())
    node = network.add_node(0)
    network.add_node(1)
    assert isinstance(node, Transport)


def test_live_node_satisfies_transport():
    from repro.network.live import LiveFabric

    async def check():
        fabric = LiveFabric(0)
        assert isinstance(fabric.node, Transport)

    asyncio.run(check())


def test_network_exposes_runtime_alias():
    """``network.runtime`` is the one clock agents may touch."""
    sim = Simulator()
    network = Network(sim)
    assert network.runtime is sim


def test_agent_runtime_property():
    network = Network(Simulator())
    node = network.add_node(0)
    agent = node.add_agent(ProtocolAgent())
    assert agent.runtime is network.runtime


def test_detached_agent_runtime_raises():
    import pytest

    with pytest.raises(RuntimeError):
        ProtocolAgent().runtime


def test_agents_do_not_import_simulator():
    """The redesign's point: protocol modules never name the engine."""
    import repro.network.election as election
    import repro.protocols.ariadne as ariadne
    import repro.protocols.base as base
    import repro.protocols.sariadne as sariadne

    for module in (base, ariadne, sariadne, election):
        assert not hasattr(module, "Simulator"), module.__name__
        source = open(module.__file__, encoding="utf-8").read()
        assert "network.sim." not in source, module.__name__
        assert "network.sim\n" not in source, module.__name__


def test_live_runtime_clock_and_timers():
    from repro.network.live import LiveRuntime

    async def check():
        runtime = LiveRuntime()
        t0 = runtime.now
        await asyncio.sleep(0.02)
        assert runtime.now > t0

        fired = []
        runtime.schedule(0.01, lambda: fired.append("once"))
        cancelled = runtime.schedule(0.01, lambda: fired.append("never"))
        cancelled.cancel()
        runtime.schedule_at(runtime.now + 0.015, lambda: fired.append("at"))
        await asyncio.sleep(0.05)
        assert fired == ["once", "at"]

        ticks = []
        cancel = runtime.schedule_every(0.01, lambda: ticks.append(runtime.now))
        await asyncio.sleep(0.06)
        cancel()
        count = len(ticks)
        assert count >= 2
        await asyncio.sleep(0.03)
        assert len(ticks) == count  # cancelled: no further rearm

    asyncio.run(check())


def test_live_runtime_negative_delay_fires_soon():
    """schedule_at in the past must fire, not wedge (fault-plan arm path)."""
    from repro.network.live import LiveRuntime

    async def check():
        runtime = LiveRuntime()
        fired = []
        runtime.schedule_at(runtime.now - 5.0, lambda: fired.append(True))
        await asyncio.sleep(0.02)
        assert fired == [True]

    asyncio.run(check())

"""Payload size audit: every payload kind is measured structurally.

The latency model bills transmission delay per byte, so a payload whose
size is under-reported gets an unrealistically cheap ride — result
tuples, code-refresh tables and handoff batches used to travel for a
flat 64 bytes no matter how much they carried.
"""

import dataclasses
import inspect

import pytest

import repro.network.messages as messages
from repro.network.messages import (
    Appointment,
    CodeRefreshResponse,
    DirectoryAdvert,
    DirectoryAnnounce,
    DirectoryHandoff,
    ElectionCall,
    ElectionReply,
    EncodedRequest,
    Envelope,
    Hello,
    PublishService,
    QueryRequest,
    QueryResponse,
    RemoteQuery,
    RemoteResponse,
    SummaryExchange,
    SummaryRequest,
    TelemetryBatch,
    TelemetryHello,
    TelemetryQuery,
    TelemetryReply,
    WithdrawService,
    payload_size,
)

#: Padded floor for small control frames (the historical flat estimate).
FLOOR = 64

_DOC = "<Profile>" + "x" * 200 + "</Profile>"
_ROWS = tuple((f"urn:x:svc:{i}", f"urn:x:cap:{i}", i) for i in range(10))
_WIRE = EncodedRequest(
    protocol="sariadne",
    codes_version=3,
    data=("urn:x:req:1", "urn:x:client:1", (("urn:x:cap:1", "Cap", ("a", "b"), ("c",), (), ""),), (("concept", "code"),)),
)

#: One representative *content-bearing* instance per payload kind, paired
#: with a strictly smaller instance of the same kind.  The parametrized
#: test asserts the large one is billed above both the floor and its
#: small sibling — i.e. the size actually tracks the carried content.
GROWABLE = {
    SummaryExchange: (
        SummaryExchange(1, b"\x00" * 8, 64, 4),
        SummaryExchange(1, b"\x00" * 256, 2048, 4),
    ),
    DirectoryHandoff: (
        DirectoryHandoff(documents=(), from_directory=1),
        DirectoryHandoff(documents=(_DOC,) * 5, from_directory=1),
    ),
    CodeRefreshResponse: (
        CodeRefreshResponse(version=1, codes=()),
        CodeRefreshResponse(version=1, codes=tuple(("concept-%d" % i, "code-%d" % i) for i in range(20))),
    ),
    PublishService: (PublishService("<x/>"), PublishService(_DOC)),
    WithdrawService: (WithdrawService("urn:x"), WithdrawService("urn:x:" + "s" * 120)),
    EncodedRequest: (EncodedRequest("sariadne", 1), _WIRE),
    QueryRequest: (QueryRequest(1, "<x/>"), QueryRequest(1, _DOC, wire=_WIRE)),
    QueryResponse: (QueryResponse(1), QueryResponse(1, _ROWS)),
    RemoteQuery: (RemoteQuery(1, "<x/>", 0), RemoteQuery(1, _DOC, 0, wire=_WIRE)),
    RemoteResponse: (RemoteResponse(1), RemoteResponse(1, _ROWS)),
    TelemetryBatch: (
        TelemetryBatch(1),
        TelemetryBatch(1, records=('{"type":"span"}',) * 10, backlog=2),
    ),
    TelemetryReply: (
        TelemetryReply("top"),
        TelemetryReply("top", body='{"nodes":' + "x" * 200 + "}"),
    ),
}

#: Fixed-form control frames: no growable content, billed at the floor.
FIXED = [
    Hello(1),
    DirectoryAdvert(1),
    ElectionCall(1, 2),
    ElectionReply(1, 2, 0.5),
    Appointment(1, 2),
    DirectoryAnnounce(1),
    SummaryRequest(1),
    TelemetryHello(1, "lg", 42),
    TelemetryQuery("top"),
]


def all_payload_classes():
    """Every payload dataclass defined in the messages module."""
    return {
        obj
        for _name, obj in inspect.getmembers(messages, inspect.isclass)
        if dataclasses.is_dataclass(obj) and obj is not Envelope
    }


class TestPayloadAudit:
    def test_every_payload_kind_is_covered(self):
        covered = set(GROWABLE) | {type(p) for p in FIXED}
        assert covered == all_payload_classes(), (
            "new payload dataclass not covered by the size audit"
        )

    @pytest.mark.parametrize(
        "small,large", GROWABLE.values(), ids=[cls.__name__ for cls in GROWABLE]
    )
    def test_content_bearing_payloads_scale(self, small, large):
        assert payload_size(large) > FLOOR  # not the old flat default
        assert payload_size(large) > payload_size(small)

    @pytest.mark.parametrize("payload", FIXED, ids=[type(p).__name__ for p in FIXED])
    def test_fixed_payloads_pay_the_floor(self, payload):
        assert payload_size(payload) == FLOOR

    def test_results_tuple_billed_per_row(self):
        one = payload_size(QueryResponse(1, _ROWS[:1]))
        ten = payload_size(QueryResponse(1, _ROWS))
        assert ten - one >= 9 * min(len(r[0]) + len(r[1]) for r in _ROWS)

    def test_handoff_billed_per_document(self):
        one = payload_size(DirectoryHandoff(documents=(_DOC,), from_directory=1))
        five = payload_size(DirectoryHandoff(documents=(_DOC,) * 5, from_directory=1))
        assert five - one == 4 * len(_DOC)

    def test_non_dataclass_payload_measured(self):
        assert payload_size("z" * 100) == messages._FRAME_BYTES + 100
        assert payload_size(None) == FLOOR

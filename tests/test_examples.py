"""Regression tests: every example script must run to completion.

The examples double as executable documentation and end-to-end smoke
tests; each contains its own assertions (worked-example distances, recall,
plan resolution), so a zero exit code means the scenario's claims held.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "media_home.py",
        "manet_discovery.py",
        "reasoner_comparison.py",
        "smart_home_composition.py",
        "pervasive_office.py",
    }


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"

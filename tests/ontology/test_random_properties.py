"""Hypothesis property tests over randomly *structured* ontologies.

Unlike the seeded generator (fixed shape), these strategies build
arbitrary told DAGs with restrictions and defined concepts, probing corner
cases: multi-parent tangles, definition chains, equivalent concepts.

Invariants checked:

1. all three classification strategies compute the same taxonomy;
2. classified subsumption is reflexive, transitive and antisymmetric up to
   equivalence classes;
3. interval encoding is sound and complete w.r.t. the taxonomy;
4. the §2.3 distance is consistent (0 ⇔ equivalent; positive ⇔ strict;
   None ⇔ not subsumed) and bounded by depth difference from above never
   below 1 for strict subsumption.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import IntervalEncoder
from repro.ontology.model import Concept, Ontology, Restriction, THING
from repro.ontology.reasoner import ClassificationStrategy, Reasoner

NS = "http://x.org/rand"


def u(index: int) -> str:
    return f"{NS}#C{index}"


def p(index: int) -> str:
    return f"{NS}#p{index}"


@st.composite
def ontologies(draw, max_concepts: int = 14, max_properties: int = 3):
    """A random valid ontology: told parents point to earlier concepts."""
    concept_count = draw(st.integers(min_value=1, max_value=max_concepts))
    property_count = draw(st.integers(min_value=0, max_value=max_properties))
    onto = Ontology(uri=NS)
    for prop_index in range(property_count):
        parents = ()
        if prop_index > 0 and draw(st.booleans()):
            parents = (p(draw(st.integers(0, prop_index - 1))),)
        onto.object_property(p(prop_index), parents=parents)
    for index in range(concept_count):
        parent_pool = list(range(index))
        parent_indices = draw(
            st.lists(st.sampled_from(parent_pool), max_size=2, unique=True)
        ) if parent_pool else []
        restrictions = []
        defined = False
        if property_count and index > 0:
            if draw(st.integers(0, 3)) == 0:
                restrictions.append(
                    Restriction(
                        prop=p(draw(st.integers(0, property_count - 1))),
                        filler=u(draw(st.integers(0, index - 1))),
                    )
                )
                defined = draw(st.booleans())
        onto.add_concept(
            Concept(
                uri=u(index),
                parents=tuple(u(i) for i in parent_indices),
                restrictions=tuple(restrictions),
                defined=defined,
            )
        )
    onto.validate()
    return onto


@given(ontologies())
@settings(max_examples=120, deadline=None)
def test_strategies_agree_on_random_ontologies(onto):
    reference = Reasoner(strategy=ClassificationStrategy.ENUMERATIVE).load([onto]).classify()
    for strategy in (ClassificationStrategy.TRAVERSAL, ClassificationStrategy.MEMOIZED):
        taxonomy = Reasoner(strategy=strategy).load([onto]).classify()
        for concept in reference.concepts():
            assert taxonomy.ancestors(concept) == reference.ancestors(concept), (
                strategy,
                concept,
            )
            assert taxonomy.equivalents(concept) == reference.equivalents(concept)


@given(ontologies())
@settings(max_examples=100, deadline=None)
def test_subsumption_is_a_partial_order(onto):
    taxonomy = Reasoner().load([onto]).classify()
    concepts = [c for c in taxonomy.concepts() if c != THING]
    for a in concepts:
        assert taxonomy.subsumes(a, a)  # reflexive
        for b in concepts:
            if taxonomy.subsumes(a, b) and taxonomy.subsumes(b, a):
                assert taxonomy.canonical(a) == taxonomy.canonical(b)  # antisymmetric
            for c in concepts:
                if taxonomy.subsumes(a, b) and taxonomy.subsumes(b, c):
                    assert taxonomy.subsumes(a, c)  # transitive


@given(ontologies(), st.booleans())
@settings(max_examples=80, deadline=None)
def test_encoding_sound_and_complete(onto, exact):
    taxonomy = Reasoner().load([onto]).classify()
    encoded = IntervalEncoder(exact=exact).encode(taxonomy)
    concepts = [c for c in taxonomy.concepts() if c != THING]
    for a in concepts:
        for b in concepts:
            assert encoded[a].subsumes(encoded[b]) == taxonomy.subsumes(a, b), (a, b)


@given(ontologies())
@settings(max_examples=100, deadline=None)
def test_distance_consistency(onto):
    taxonomy = Reasoner().load([onto]).classify()
    concepts = [c for c in taxonomy.concepts() if c != THING]
    for a in concepts:
        for b in concepts:
            distance = taxonomy.distance(a, b)
            if not taxonomy.subsumes(a, b):
                assert distance is None
            elif taxonomy.canonical(a) == taxonomy.canonical(b):
                assert distance == 0
            else:
                assert distance is not None and distance >= 1
                # Shortest-path level count never exceeds depth difference
                # measured along the reduction... it can exceed the naive
                # depth difference in multi-parent DAGs, but is bounded by
                # the number of concepts.
                assert distance <= len(concepts) + 1

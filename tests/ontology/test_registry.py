"""Tests for the ontology registry and snapshot versioning."""

import pytest

from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.registry import OntologyRegistry, UnknownOntologyError


def make(uri="http://x.org/a", seed=0):
    return generate_ontology(uri, OntologyShape(concepts=5, properties=2), seed=seed)


class TestRegistry:
    def test_register_and_get(self):
        registry = OntologyRegistry()
        onto = make()
        registry.register(onto)
        assert registry.get(onto.uri) is onto
        assert onto.uri in registry
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownOntologyError):
            OntologyRegistry().get("http://x.org/missing")

    def test_remove(self):
        onto = make()
        registry = OntologyRegistry([onto])
        registry.remove(onto.uri)
        assert onto.uri not in registry

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownOntologyError):
            OntologyRegistry().remove("http://x.org/missing")

    def test_get_many_sorted(self):
        a, b = make("http://x.org/a"), make("http://x.org/b", seed=1)
        registry = OntologyRegistry([b, a])
        result = registry.get_many([b.uri, a.uri])
        assert [o.uri for o in result] == [a.uri, b.uri]

    def test_owner_of(self):
        onto = make()
        registry = OntologyRegistry([onto])
        concept = next(iter(onto.concepts))
        assert registry.owner_of(concept) is onto

    def test_owner_of_unknown(self):
        with pytest.raises(UnknownOntologyError):
            OntologyRegistry([make()]).owner_of("http://x.org/a#Nope")


class TestSnapshotVersioning:
    def test_register_bumps(self):
        registry = OntologyRegistry()
        v0 = registry.snapshot_version
        registry.register(make())
        assert registry.snapshot_version == v0 + 1

    def test_replace_bumps(self):
        onto = make()
        registry = OntologyRegistry([onto])
        v = registry.snapshot_version
        registry.register(make(onto.uri, seed=2))
        assert registry.snapshot_version == v + 1

    def test_remove_bumps(self):
        onto = make()
        registry = OntologyRegistry([onto])
        v = registry.snapshot_version
        registry.remove(onto.uri)
        assert registry.snapshot_version == v + 1

"""Tests for the classified taxonomy and the §2.3 distance function."""

import pytest

from repro.ontology.model import THING
from repro.ontology.taxonomy import Taxonomy


def build(concepts, subsumers):
    return Taxonomy.from_subsumptions(concepts, {k: set(v) for k, v in subsumers.items()})


URI = "http://x.org/o#"


def u(name: str) -> str:
    return URI + name


class TestChain:
    """A ⊐ B ⊐ C chain."""

    @pytest.fixture()
    def taxonomy(self):
        return build([u("A"), u("B"), u("C")], {u("B"): [u("A")], u("C"): [u("A"), u("B")]})

    def test_subsumes_transitive(self, taxonomy):
        assert taxonomy.subsumes(u("A"), u("C"))

    def test_subsumes_reflexive(self, taxonomy):
        assert taxonomy.subsumes(u("B"), u("B"))

    def test_not_subsumes_upward(self, taxonomy):
        assert not taxonomy.subsumes(u("C"), u("A"))

    def test_distance_counts_levels(self, taxonomy):
        assert taxonomy.distance(u("A"), u("B")) == 1
        assert taxonomy.distance(u("A"), u("C")) == 2

    def test_distance_zero_on_self(self, taxonomy):
        assert taxonomy.distance(u("B"), u("B")) == 0

    def test_distance_null_when_unrelated(self, taxonomy):
        assert taxonomy.distance(u("C"), u("A")) is None

    def test_depth(self, taxonomy):
        assert taxonomy.depth(u("A")) == 1
        assert taxonomy.depth(u("C")) == 3

    def test_thing_subsumes_all(self, taxonomy):
        assert taxonomy.subsumes(THING, u("C"))
        assert taxonomy.distance(THING, u("A")) == 1

    def test_parents_children(self, taxonomy):
        assert taxonomy.parents(u("C")) == {u("B")}
        assert taxonomy.children(u("A")) == {u("B")}

    def test_roots_and_leaves(self, taxonomy):
        assert taxonomy.roots() == {u("A")}
        assert taxonomy.leaves() == [u("C")]

    def test_len_excludes_thing(self, taxonomy):
        assert len(taxonomy) == 3

    def test_unknown_concept_raises(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.subsumes(u("A"), u("Nope"))


class TestEquivalence:
    @pytest.fixture()
    def taxonomy(self):
        # A ≡ B (mutual subsumption), C below both.
        return build(
            [u("A"), u("B"), u("C")],
            {u("A"): [u("B")], u("B"): [u("A")], u("C"): [u("A"), u("B")]},
        )

    def test_equivalents_grouped(self, taxonomy):
        assert taxonomy.equivalents(u("A")) == {u("A"), u("B")}

    def test_canonical_is_shared(self, taxonomy):
        assert taxonomy.canonical(u("A")) == taxonomy.canonical(u("B"))

    def test_distance_zero_between_equivalents(self, taxonomy):
        assert taxonomy.distance(u("A"), u("B")) == 0
        assert taxonomy.distance(u("B"), u("A")) == 0

    def test_subsumption_through_either_member(self, taxonomy):
        assert taxonomy.subsumes(u("B"), u("C"))
        assert taxonomy.distance(u("B"), u("C")) == 1


class TestDiamond:
    """A over B and C, D under both: multi-parent DAG."""

    @pytest.fixture()
    def taxonomy(self):
        return build(
            [u("A"), u("B"), u("C"), u("D")],
            {
                u("B"): [u("A")],
                u("C"): [u("A")],
                u("D"): [u("A"), u("B"), u("C")],
            },
        )

    def test_d_has_two_parents(self, taxonomy):
        assert taxonomy.parents(u("D")) == {u("B"), u("C")}

    def test_transitive_reduction_drops_direct_edge(self, taxonomy):
        # A→D is implied via B (and C); it must not be a direct edge.
        assert u("D") not in taxonomy.children(u("A"))

    def test_distance_shortest_path(self, taxonomy):
        assert taxonomy.distance(u("A"), u("D")) == 2

    def test_unrelated_siblings(self, taxonomy):
        assert taxonomy.distance(u("B"), u("C")) is None
        assert not taxonomy.subsumes(u("B"), u("C"))


class TestFig1Distances:
    """The paper's worked example relies on these level counts."""

    def test_media_distances(self, media_taxonomy):
        ns = "http://repro.example.org/media"
        assert (
            media_taxonomy.distance(
                f"{ns}/resources#DigitalResource", f"{ns}/resources#VideoResource"
            )
            == 1
        )
        assert (
            media_taxonomy.distance(f"{ns}/servers#DigitalServer", f"{ns}/servers#VideoServer")
            == 1
        )
        assert (
            media_taxonomy.distance(f"{ns}/resources#Stream", f"{ns}/resources#VideoStream")
            == 1
        )

    def test_media_subsumption_direction(self, media_taxonomy):
        ns = "http://repro.example.org/media"
        assert media_taxonomy.subsumes(
            f"{ns}/servers#Server", f"{ns}/servers#VideoServer"
        )
        assert not media_taxonomy.subsumes(
            f"{ns}/servers#VideoServer", f"{ns}/servers#Server"
        )

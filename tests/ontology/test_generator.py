"""Tests for the synthetic ontology generator."""

import pytest

from repro.ontology.generator import (
    OntologyShape,
    PAPER_REASONER_SHAPE,
    generate_ontology,
    generate_ontology_suite,
    media_home_ontologies,
)
from repro.ontology.reasoner import Reasoner


class TestGenerateOntology:
    def test_shape_respected(self):
        onto = generate_ontology("http://x.org/o", OntologyShape(concepts=30, properties=7), seed=1)
        assert len(onto.concepts) == 30
        assert len(onto.properties) == 7

    def test_paper_shape(self):
        onto = generate_ontology("http://x.org/paper", PAPER_REASONER_SHAPE, seed=1)
        stats = onto.stats()
        assert stats["concepts"] == 99
        assert stats["properties"] == 39

    def test_deterministic(self):
        a = generate_ontology("http://x.org/o", seed=9)
        b = generate_ontology("http://x.org/o", seed=9)
        assert a.concepts == b.concepts
        assert a.properties == b.properties

    def test_different_seeds_differ(self):
        a = generate_ontology("http://x.org/o", seed=1)
        b = generate_ontology("http://x.org/o", seed=2)
        assert a.concepts != b.concepts

    def test_generated_is_valid_and_classifiable(self):
        onto = generate_ontology("http://x.org/o", OntologyShape(concepts=40, properties=8), seed=3)
        onto.validate()
        taxonomy = Reasoner().load([onto]).classify()
        assert len(taxonomy) == 40

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            generate_ontology("http://x.org/o", OntologyShape(concepts=0))

    def test_has_defined_concepts(self):
        onto = generate_ontology(
            "http://x.org/o", OntologyShape(concepts=80, defined_fraction=0.3), seed=4
        )
        assert any(c.defined for c in onto.concepts.values())


class TestGenerateSuite:
    def test_suite_size_and_uris(self):
        suite = generate_ontology_suite(count=5, seed=0)
        assert len(suite) == 5
        assert len({o.uri for o in suite}) == 5

    def test_paper_setting_22_ontologies(self):
        suite = generate_ontology_suite(count=22, shape=OntologyShape(concepts=10, properties=3))
        assert len(suite) == 22

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            generate_ontology_suite(count=0)


class TestMediaHome:
    def test_structure(self):
        resources, servers = media_home_ontologies()
        assert "VideoResource" in str(sorted(resources.concepts))
        assert "DigitalServer" in str(sorted(servers.concepts))
        resources.validate()
        servers.validate()

    def test_classification_levels(self):
        resources, servers = media_home_ontologies()
        taxonomy = Reasoner().load([resources, servers]).classify()
        ns = resources.uri
        assert taxonomy.depth(f"{ns}#VideoResource") == 3  # Resource > Digital > Video

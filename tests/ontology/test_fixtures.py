"""Tests for the hand-crafted office ontology suite — including the
inference ground truths the examples rely on."""

import pytest

from repro.core.codes import CodeTable
from repro.ontology.fixtures import (
    device,
    document,
    office_suite,
    place,
    service,
)
from repro.ontology.reasoner import ClassificationStrategy, Reasoner
from repro.ontology.registry import OntologyRegistry


@pytest.fixture(scope="module")
def taxonomy():
    return Reasoner().load(office_suite()).classify()


class TestSuiteStructure:
    def test_four_ontologies_all_valid(self):
        suite = office_suite()
        assert len(suite) == 4
        for onto in suite:
            onto.validate()

    def test_namespaces_disjoint(self):
        suite = office_suite()
        seen: set[str] = set()
        for onto in suite:
            for concept in onto.concepts:
                assert concept not in seen
                seen.add(concept)


class TestInference:
    def test_inkjet_is_inferred_color_printer(self, taxonomy):
        """InkjetPrinter carries ∃supports.ColorOutput, so the *defined*
        ColorPrinter must subsume it even without a told edge."""
        assert taxonomy.subsumes(device("ColorPrinter"), device("InkjetPrinter"))

    def test_laser_is_not_color_printer(self, taxonomy):
        assert not taxonomy.subsumes(device("ColorPrinter"), device("LaserPrinter"))

    def test_projector_is_inferred_hires_display(self, taxonomy):
        assert taxonomy.subsumes(device("HiResDisplay"), device("Projector"))

    def test_monitor_is_not_hires(self, taxonomy):
        assert not taxonomy.subsumes(device("HiResDisplay"), device("Monitor"))

    def test_told_chains(self, taxonomy):
        assert taxonomy.subsumes(device("Device"), device("InkjetPrinter"))
        assert taxonomy.subsumes(document("Artefact"), document("Photo"))
        assert taxonomy.subsumes(place("Zone"), place("MeetingRoom"))
        assert taxonomy.subsumes(service("OfficeService"), service("ColorPrintService"))

    def test_distances(self, taxonomy):
        assert taxonomy.distance(document("Document"), document("Invoice")) == 2
        assert taxonomy.distance(service("PrintService"), service("ColorPrintService")) == 1

    def test_all_strategies_agree(self):
        reference = (
            Reasoner(strategy=ClassificationStrategy.ENUMERATIVE)
            .load(office_suite())
            .classify()
        )
        for strategy in (ClassificationStrategy.TRAVERSAL, ClassificationStrategy.MEMOIZED):
            taxonomy = Reasoner(strategy=strategy).load(office_suite()).classify()
            for concept in reference.concepts():
                assert taxonomy.ancestors(concept) == reference.ancestors(concept)


class TestEncodedSuite:
    def test_codes_agree_with_taxonomy(self, taxonomy):
        table = CodeTable(OntologyRegistry(office_suite()))
        for a in taxonomy.concepts():
            for b in taxonomy.concepts():
                assert table.subsumes(a, b) == taxonomy.subsumes(a, b), (a, b)

    def test_inferred_subsumption_survives_encoding(self):
        table = CodeTable(OntologyRegistry(office_suite()))
        assert table.subsumes(device("ColorPrinter"), device("InkjetPrinter"))

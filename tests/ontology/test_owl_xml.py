"""Tests for the ontology XML codec."""

import pytest

from repro.ontology.generator import OntologyShape, generate_ontology
from repro.ontology.model import Ontology, Restriction
from repro.ontology.owl_xml import OwlSyntaxError, ontology_from_xml, ontology_to_xml


@pytest.fixture()
def onto() -> Ontology:
    onto = Ontology(uri="http://x.org/o", version="3")
    onto.object_property("http://x.org/o#p", domain="http://x.org/o#A")
    onto.object_property("http://x.org/o#q", parents=("http://x.org/o#p",))
    onto.concept("http://x.org/o#A", label="A")
    onto.concept(
        "http://x.org/o#B",
        parents=("http://x.org/o#A",),
        restrictions=(Restriction("http://x.org/o#p", "http://x.org/o#A"),),
        defined=True,
    )
    onto.validate()
    return onto


class TestRoundtrip:
    def test_roundtrip_preserves_everything(self, onto):
        restored = ontology_from_xml(ontology_to_xml(onto))
        assert restored.uri == onto.uri
        assert restored.version == onto.version
        assert restored.concepts == onto.concepts
        assert restored.properties == onto.properties

    def test_roundtrip_generated(self):
        onto = generate_ontology(
            "http://x.org/gen", OntologyShape(concepts=50, properties=10), seed=2
        )
        restored = ontology_from_xml(ontology_to_xml(onto))
        assert restored.concepts == onto.concepts
        assert restored.properties == onto.properties

    def test_defined_flag_roundtrips(self, onto):
        restored = ontology_from_xml(ontology_to_xml(onto))
        assert restored.concepts["http://x.org/o#B"].defined


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(OwlSyntaxError, match="not well-formed"):
            ontology_from_xml("<Ontology uri='x'")

    def test_wrong_root(self):
        with pytest.raises(OwlSyntaxError, match="expected <Ontology>"):
            ontology_from_xml("<Wrong/>")

    def test_missing_uri(self):
        with pytest.raises(OwlSyntaxError, match="missing required attribute"):
            ontology_from_xml("<Ontology><Class uri='http://x.org/o#A'/></Ontology>")

    def test_unexpected_element(self):
        with pytest.raises(OwlSyntaxError, match="unexpected element"):
            ontology_from_xml("<Ontology uri='http://x.org/o'><Bogus/></Ontology>")

    def test_dangling_reference_caught_by_validate(self):
        doc = (
            "<Ontology uri='http://x.org/o'>"
            "<Class uri='http://x.org/o#A'>"
            "<subClassOf resource='http://x.org/o#Missing'/>"
            "</Class></Ontology>"
        )
        with pytest.raises(Exception, match="unknown parent"):
            ontology_from_xml(doc)

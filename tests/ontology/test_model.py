"""Tests for the ontology model (concepts, properties, validation)."""

import pytest

from repro.ontology.model import (
    Concept,
    ObjectProperty,
    Ontology,
    OntologyError,
    Restriction,
    THING,
)


def make_ontology() -> Ontology:
    onto = Ontology(uri="http://x.org/o")
    onto.object_property("http://x.org/o#hasPart")
    onto.concept("http://x.org/o#A")
    onto.concept("http://x.org/o#B", parents=("http://x.org/o#A",))
    return onto


class TestConcept:
    def test_rejects_self_parent(self):
        with pytest.raises(OntologyError):
            Concept(uri="http://x.org/o#A", parents=("http://x.org/o#A",))

    def test_rejects_invalid_uri(self):
        with pytest.raises(ValueError):
            Concept(uri="not a uri")

    def test_restriction_validates_uris(self):
        with pytest.raises(ValueError):
            Restriction(prop="bad uri", filler="http://x.org/o#A")


class TestOntologyConstruction:
    def test_duplicate_concept_rejected(self):
        onto = make_ontology()
        with pytest.raises(OntologyError):
            onto.concept("http://x.org/o#A")

    def test_duplicate_property_rejected(self):
        onto = make_ontology()
        with pytest.raises(OntologyError):
            onto.object_property("http://x.org/o#hasPart")

    def test_contains_thing(self):
        onto = make_ontology()
        assert THING in onto

    def test_len_counts_concepts(self):
        assert len(make_ontology()) == 2

    def test_stats(self):
        onto = make_ontology()
        onto.concept(
            "http://x.org/o#C",
            parents=("http://x.org/o#B",),
            restrictions=(Restriction("http://x.org/o#hasPart", "http://x.org/o#A"),),
        )
        stats = onto.stats()
        assert stats["concepts"] == 3
        assert stats["properties"] == 1
        assert stats["restrictions"] == 1
        assert stats["axioms"] == 3  # two subclass + one restriction


class TestValidation:
    def test_valid_ontology_passes(self):
        make_ontology().validate()

    def test_unknown_parent_rejected(self):
        onto = make_ontology()
        onto.concept("http://x.org/o#C", parents=("http://x.org/o#Missing",))
        with pytest.raises(OntologyError, match="unknown parent"):
            onto.validate()

    def test_thing_parent_allowed(self):
        onto = make_ontology()
        onto.concept("http://x.org/o#C", parents=(THING,))
        onto.validate()

    def test_unknown_restriction_property_rejected(self):
        onto = make_ontology()
        onto.concept(
            "http://x.org/o#C",
            restrictions=(Restriction("http://x.org/o#missing", "http://x.org/o#A"),),
        )
        with pytest.raises(OntologyError, match="unknown property"):
            onto.validate()

    def test_unknown_filler_rejected(self):
        onto = make_ontology()
        onto.concept(
            "http://x.org/o#C",
            restrictions=(Restriction("http://x.org/o#hasPart", "http://x.org/o#Missing"),),
        )
        with pytest.raises(OntologyError, match="unknown filler"):
            onto.validate()

    def test_told_cycle_rejected(self):
        onto = Ontology(uri="http://x.org/o")
        onto.add_concept(Concept("http://x.org/o#A", parents=("http://x.org/o#B",)))
        onto.add_concept(Concept("http://x.org/o#B", parents=("http://x.org/o#A",)))
        with pytest.raises(OntologyError, match="cycle"):
            onto.validate()

    def test_property_cycle_rejected(self):
        onto = Ontology(uri="http://x.org/o")
        onto.add_property(ObjectProperty("http://x.org/o#p", parents=("http://x.org/o#q",)))
        onto.add_property(ObjectProperty("http://x.org/o#q", parents=("http://x.org/o#p",)))
        with pytest.raises(OntologyError, match="cycle"):
            onto.validate()

    def test_unknown_property_parent_rejected(self):
        onto = make_ontology()
        onto.object_property("http://x.org/o#p", parents=("http://x.org/o#missing",))
        with pytest.raises(OntologyError):
            onto.validate()


class TestToldQueries:
    def test_ancestors_transitive(self):
        onto = make_ontology()
        onto.concept("http://x.org/o#C", parents=("http://x.org/o#B",))
        ancestors = onto.told_concept_ancestors("http://x.org/o#C")
        assert "http://x.org/o#B" in ancestors
        assert "http://x.org/o#A" in ancestors
        assert THING in ancestors

    def test_ancestors_excludes_self(self):
        onto = make_ontology()
        assert "http://x.org/o#B" not in onto.told_concept_ancestors("http://x.org/o#B")

    def test_ancestors_unknown_concept(self):
        with pytest.raises(KeyError):
            make_ontology().told_concept_ancestors("http://x.org/o#Missing")

    def test_property_ancestors_include_self(self):
        onto = make_ontology()
        onto.object_property("http://x.org/o#sub", parents=("http://x.org/o#hasPart",))
        ancestors = onto.told_property_ancestors("http://x.org/o#sub")
        assert ancestors == {"http://x.org/o#sub", "http://x.org/o#hasPart"}

    def test_multi_parent_ancestors(self):
        onto = make_ontology()
        onto.concept("http://x.org/o#D")
        onto.concept(
            "http://x.org/o#E", parents=("http://x.org/o#B", "http://x.org/o#D")
        )
        ancestors = onto.told_concept_ancestors("http://x.org/o#E")
        assert {"http://x.org/o#A", "http://x.org/o#B", "http://x.org/o#D"} <= ancestors

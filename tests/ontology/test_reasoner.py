"""Tests for structural subsumption and the three classification strategies."""

import pytest

from repro.ontology.model import Ontology, OntologyError, Restriction, THING
from repro.ontology.reasoner import (
    ClassificationStrategy,
    Reasoner,
    StructuralSubsumption,
)

NS = "http://x.org/o#"


def u(name: str) -> str:
    return NS + name


@pytest.fixture()
def onto() -> Ontology:
    """Told chain + a defined concept enabling inference.

    Animal ⊐ Dog; hasOwner property; Pet is *defined* as ∃hasOwner.Person;
    Dog carries ∃hasOwner.Person, so Pet ⊒ Dog must be inferred.
    """
    onto = Ontology(uri="http://x.org/o")
    onto.object_property(u("hasOwner"))
    onto.object_property(u("hasGuardian"), parents=(u("hasOwner"),))
    onto.concept(u("Person"))
    onto.concept(u("Child"), parents=(u("Person"),))
    onto.concept(u("Animal"))
    onto.concept(
        u("Dog"),
        parents=(u("Animal"),),
        restrictions=(Restriction(u("hasOwner"), u("Person")),),
    )
    onto.concept(
        u("Pet"),
        restrictions=(Restriction(u("hasOwner"), u("Person")),),
        defined=True,
    )
    onto.concept(
        u("ChildsPet"),
        restrictions=(Restriction(u("hasOwner"), u("Child")),),
        defined=True,
    )
    onto.concept(
        u("Stray"),
        parents=(u("Animal"),),
    )
    onto.concept(
        u("GuardedDog"),
        parents=(u("Animal"),),
        restrictions=(Restriction(u("hasGuardian"), u("Child")),),
    )
    onto.validate()
    return onto


class TestStructuralSubsumption:
    def test_told_ancestor_subsumes(self, onto):
        core = StructuralSubsumption([onto])
        assert core.subsumes(u("Animal"), u("Dog"))

    def test_thing_subsumes_everything(self, onto):
        core = StructuralSubsumption([onto])
        assert core.subsumes(THING, u("Dog"))
        assert not core.subsumes(u("Dog"), THING)

    def test_defined_concept_inferred(self, onto):
        core = StructuralSubsumption([onto])
        assert core.subsumes(u("Pet"), u("Dog"))

    def test_primitive_not_inferred(self, onto):
        # Stray is an Animal with no owner restriction: not a Pet.
        core = StructuralSubsumption([onto])
        assert not core.subsumes(u("Pet"), u("Stray"))

    def test_definition_with_specific_filler_not_entailed(self, onto):
        # ChildsPet needs hasOwner.Child; Dog only guarantees Person.
        core = StructuralSubsumption([onto])
        assert not core.subsumes(u("ChildsPet"), u("Dog")
        )

    def test_property_hierarchy_entailment(self, onto):
        # GuardedDog has ∃hasGuardian.Child and hasGuardian ⊑ hasOwner,
        # Child ⊑ Person ⇒ Pet (∃hasOwner.Person) subsumes GuardedDog.
        core = StructuralSubsumption([onto])
        assert core.subsumes(u("Pet"), u("GuardedDog"))
        assert core.subsumes(u("ChildsPet"), u("GuardedDog"))

    def test_unknown_concept_raises(self, onto):
        core = StructuralSubsumption([onto])
        with pytest.raises(KeyError):
            core.subsumes(u("Missing"), u("Dog"))
        with pytest.raises(KeyError):
            core.subsumes(u("Dog"), u("Missing"))

    def test_duplicate_concept_across_ontologies_rejected(self, onto):
        clone = Ontology(uri="http://x.org/other")
        clone.concept(u("Dog"))
        with pytest.raises(OntologyError):
            StructuralSubsumption([onto, clone])

    def test_property_subsumes(self, onto):
        core = StructuralSubsumption([onto])
        assert core.property_subsumes(u("hasOwner"), u("hasGuardian"))
        assert not core.property_subsumes(u("hasGuardian"), u("hasOwner"))

    def test_restriction_inherited_from_parent(self, onto):
        # A subclass of Dog inherits ∃hasOwner.Person, hence is a Pet.
        onto.concept(u("Puppy"), parents=(u("Dog"),))
        onto.validate()
        core = StructuralSubsumption([onto])
        assert core.subsumes(u("Pet"), u("Puppy"))


class TestDefinitionalCycles:
    def test_cycle_through_fillers_terminates(self):
        onto = Ontology(uri="http://x.org/c")
        onto.object_property(u("p"))
        onto.concept(u("A"), restrictions=(Restriction(u("p"), u("B")),), defined=True)
        onto.concept(u("B"), restrictions=(Restriction(u("p"), u("A")),), defined=True)
        onto.validate()
        core = StructuralSubsumption([onto])
        # Least fixpoint: the mutual definition is not entailed.
        assert not core.subsumes(u("A"), u("B"))
        assert not core.subsumes(u("B"), u("A"))


class TestStrategiesAgree:
    @pytest.mark.parametrize("strategy", list(ClassificationStrategy))
    def test_taxonomy_matches_enumerative(self, onto, strategy):
        reference = Reasoner(strategy=ClassificationStrategy.ENUMERATIVE).load([onto]).classify()
        taxonomy = Reasoner(strategy=strategy).load([onto]).classify()
        for concept in reference.concepts():
            assert taxonomy.ancestors(concept) == reference.ancestors(concept), concept

    def test_generated_ontology_agreement(self):
        from repro.ontology.generator import OntologyShape, generate_ontology

        onto = generate_ontology(
            "http://x.org/gen", OntologyShape(concepts=60, properties=12), seed=5
        )
        reference = Reasoner(strategy=ClassificationStrategy.ENUMERATIVE).load([onto]).classify()
        for strategy in (ClassificationStrategy.TRAVERSAL, ClassificationStrategy.MEMOIZED):
            taxonomy = Reasoner(strategy=strategy).load([onto]).classify()
            for concept in reference.concepts():
                assert taxonomy.ancestors(concept) == reference.ancestors(concept), (
                    strategy,
                    concept,
                )

    def test_traversal_does_fewer_tests_than_enumerative(self, onto):
        enum = Reasoner(strategy=ClassificationStrategy.ENUMERATIVE)
        enum.load([onto]).classify()
        trav = Reasoner(strategy=ClassificationStrategy.TRAVERSAL)
        trav.load([onto]).classify()
        assert trav.stats.subsumption_tests < enum.stats.subsumption_tests


class TestEquivalenceDetection:
    def test_mutually_defined_concepts_merge(self):
        onto = Ontology(uri="http://x.org/e")
        onto.object_property(u("p"))
        onto.concept(u("Base"))
        onto.concept(u("X"), restrictions=(Restriction(u("p"), u("Base")),), defined=True)
        onto.concept(u("Y"), restrictions=(Restriction(u("p"), u("Base")),), defined=True)
        onto.validate()
        for strategy in ClassificationStrategy:
            taxonomy = Reasoner(strategy=strategy).load([onto]).classify()
            assert taxonomy.canonical(u("X")) == taxonomy.canonical(u("Y")), strategy
            assert taxonomy.distance(u("X"), u("Y")) == 0


class TestReasonerFacade:
    def test_classify_before_load_raises(self):
        with pytest.raises(RuntimeError):
            Reasoner().classify()

    def test_loaded_flag(self, onto):
        reasoner = Reasoner()
        assert not reasoner.loaded
        reasoner.load([onto])
        assert reasoner.loaded

    def test_distance_query(self, onto):
        reasoner = Reasoner().load([onto])
        assert reasoner.distance(u("Animal"), u("Dog")) == 1
        assert reasoner.distance(u("Dog"), u("Animal")) is None

    def test_stats_accumulate(self, onto):
        reasoner = Reasoner().load([onto])
        reasoner.classify()
        assert reasoner.stats.load_seconds > 0
        assert reasoner.stats.classify_seconds > 0
        assert reasoner.stats.subsumption_tests > 0

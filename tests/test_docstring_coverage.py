"""CI gate: the public API keeps its docstrings (>= 90% on src/repro).

Runs the stdlib checker in ``tools/docstring_coverage.py`` (an
interrogate stand-in — no third-party dependency) in-process, so the
gate fails locally exactly like in CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import docstring_coverage  # noqa: E402

SRC = REPO_ROOT / "src" / "repro"
THRESHOLD = 90.0


def test_public_api_docstring_coverage():
    reports = docstring_coverage.scan_tree(SRC)
    total = sum(report.total for report in reports)
    documented = sum(report.documented for report in reports)
    assert total > 0
    coverage = 100.0 * documented / total
    missing = [
        f"{report.path.relative_to(REPO_ROOT)}:{name}"
        for report in reports
        for name in report.missing
    ]
    assert coverage >= THRESHOLD, (
        f"docstring coverage {coverage:.1f}% < {THRESHOLD}%; missing: {missing}"
    )


def test_cli_exit_codes(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "documented.py").write_text('"""Module doc."""\n\ndef f():\n    """Doc."""\n')
    assert docstring_coverage.main([str(package), "--fail-under", "100"]) == 0
    (package / "bare.py").write_text("def g():\n    pass\n")
    assert docstring_coverage.main([str(package), "--fail-under", "90"]) == 1


def test_private_names_are_ignored(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text(
        '"""Module doc."""\n\n'
        "def _helper():\n    pass\n\n"
        "class Api:\n"
        '    """Doc."""\n'
        "    def __init__(self):\n        pass\n"
        "    def method(self):\n"
        '        """Doc."""\n'
    )
    reports = docstring_coverage.scan_tree(package)
    assert len(reports) == 1
    assert reports[0].missing == []
    assert reports[0].total == 3  # module, Api, Api.method
